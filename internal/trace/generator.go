// Package trace synthesizes and replays packet traces.
//
// The paper evaluates on a WIDE/MAWI 2020 backbone trace (≈10K distinct
// flows per epoch, 9M/18M packets over 15 s/30 s). That trace is not
// redistributable, so this package generates the closest synthetic
// equivalent: heavy-tailed (Zipf) per-flow packet counts over a configurable
// flow population, with injectors for the traffic patterns the experiments
// need — DDoS victims (many sources, one destination), port scans, and
// flow-count spikes. Generation is deterministic per seed.
package trace

import (
	"math"
	"math/rand"
	"sort"

	"flymon/internal/packet"
)

// Config parameterizes synthetic trace generation.
type Config struct {
	// Flows is the number of distinct 5-tuple flows.
	Flows int
	// Packets is the total packet count to emit.
	Packets int
	// ZipfS is the Zipf skew of per-flow packet counts (s > 1; the paper's
	// backbone traffic is well modelled around 1.1–1.3).
	ZipfS float64
	// DurationNs is the trace duration; packet timestamps are spread
	// uniformly across it. Defaults to 15 s when zero.
	DurationNs uint64
	// Seed makes generation deterministic.
	Seed int64
	// MeanPacketSize is the mean packet size in bytes (default 700).
	MeanPacketSize int
}

func (c *Config) defaults() {
	if c.DurationNs == 0 {
		c.DurationNs = 15e9
	}
	if c.MeanPacketSize == 0 {
		c.MeanPacketSize = 700
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
}

// Trace is an in-memory packet trace.
type Trace struct {
	Packets []packet.Packet
}

// flowTuple is an internal 5-tuple used during generation.
type flowTuple struct {
	src, dst uint32
	sp, dp   uint16
	proto    uint8
	weight   float64
	// Flows are active only inside [start, start+span) (fractions of the
	// trace duration): real flows begin and end, which is what makes
	// stale-state effects (e.g. reading a dead flow's last arrival time)
	// reproducible.
	start, span float64
}

// Generate synthesizes a trace per cfg.
func Generate(cfg Config) *Trace {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	flows := make([]flowTuple, cfg.Flows)
	for i := range flows {
		flows[i] = randomFlow(rng)
		// Zipf rank weight: flow i has weight (i+1)^-s. Heavy flows live
		// long; mice are short-lived, as in real backbone traffic.
		flows[i].weight = math.Pow(float64(i+1), -cfg.ZipfS)
		span := 0.05 + rng.Float64()*0.35
		if i < cfg.Flows/20 { // the heaviest 5% persist
			span = 0.6 + rng.Float64()*0.4
		}
		flows[i].span = span
		flows[i].start = rng.Float64() * (1 - span)
	}
	// Shuffle so that rank is uncorrelated with tuple values.
	rng.Shuffle(len(flows), func(i, j int) { flows[i], flows[j] = flows[j], flows[i] })

	// Build a cumulative weight table for weighted sampling.
	cum := make([]float64, len(flows))
	var total float64
	for i, f := range flows {
		total += f.weight
		cum[i] = total
	}

	tr := &Trace{Packets: make([]packet.Packet, 0, cfg.Packets)}
	for n := 0; n < cfg.Packets; n++ {
		x := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, x)
		if idx >= len(flows) {
			idx = len(flows) - 1
		}
		f := flows[idx]
		// Timestamp uniform within the flow's active window.
		frac := f.start + rng.Float64()*f.span
		ts := uint64(frac * float64(cfg.DurationNs))
		size := samplePacketSize(rng, cfg.MeanPacketSize)
		tr.Packets = append(tr.Packets, packet.Packet{
			SrcIP: f.src, DstIP: f.dst,
			SrcPort: f.sp, DstPort: f.dp, Proto: f.proto,
			Size:         size,
			TimestampNs:  ts,
			QueueLength:  sampleQueueLength(rng, n, cfg.Packets),
			QueueDelayNs: uint32(rng.Intn(50_000)),
		})
	}
	sort.Slice(tr.Packets, func(i, j int) bool {
		return tr.Packets[i].TimestampNs < tr.Packets[j].TimestampNs
	})
	return tr
}

func randomFlow(rng *rand.Rand) flowTuple {
	proto := uint8(6) // TCP
	if rng.Intn(5) == 0 {
		proto = 17 // UDP
	}
	return flowTuple{
		src:   rng.Uint32(),
		dst:   rng.Uint32(),
		sp:    uint16(1024 + rng.Intn(64000)),
		dp:    wellKnownPort(rng),
		proto: proto,
	}
}

func wellKnownPort(rng *rand.Rand) uint16 {
	ports := []uint16{80, 443, 53, 22, 25, 8080, 3306, 123}
	if rng.Intn(3) == 0 {
		return uint16(1024 + rng.Intn(64000))
	}
	return ports[rng.Intn(len(ports))]
}

// samplePacketSize draws a bimodal packet size: small ACK-like packets and
// near-MTU data packets, with the requested mean.
func samplePacketSize(rng *rand.Rand, mean int) uint32 {
	if rng.Intn(100) < 40 {
		return uint32(40 + rng.Intn(88)) // ACKs / small control
	}
	// Data packets: uniform around the residual mean, capped at MTU.
	hi := (mean-40*40/100)*100/60*2 - 64
	if hi < 128 {
		hi = 128
	}
	if hi > 1500 {
		hi = 1500
	}
	return uint32(64 + rng.Intn(hi-63))
}

// sampleQueueLength models queue build-up that rises mid-trace, so
// Max(QueueLength) tasks have meaningful structure to detect.
func sampleQueueLength(rng *rand.Rand, n, total int) uint32 {
	phase := float64(n) / float64(total)
	base := 10 + 90*math.Sin(phase*math.Pi)
	return uint32(base * (0.5 + rng.Float64()))
}

// InjectDDoS adds a DDoS-victim pattern: attackers·pps packets from
// `attackers` distinct source IPs toward victim. Packets are merged in
// timestamp order.
func (t *Trace) InjectDDoS(victim uint32, attackers, packetsPerAttacker int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var dur uint64 = 15e9
	if len(t.Packets) > 0 {
		dur = t.Packets[len(t.Packets)-1].TimestampNs
	}
	n := attackers * packetsPerAttacker
	extra := make([]packet.Packet, 0, n)
	for a := 0; a < attackers; a++ {
		src := rng.Uint32()
		for p := 0; p < packetsPerAttacker; p++ {
			extra = append(extra, packet.Packet{
				SrcIP: src, DstIP: victim,
				SrcPort: uint16(1024 + rng.Intn(64000)), DstPort: 80, Proto: 6,
				Size:        64,
				TimestampNs: uint64(rng.Int63n(int64(dur) + 1)),
			})
		}
	}
	t.merge(extra)
}

// InjectPortScan adds a port-scan pattern: one source probing `ports`
// distinct destination ports on one destination host.
func (t *Trace) InjectPortScan(src, dst uint32, ports int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var dur uint64 = 15e9
	if len(t.Packets) > 0 {
		dur = t.Packets[len(t.Packets)-1].TimestampNs
	}
	extra := make([]packet.Packet, 0, ports)
	for p := 0; p < ports; p++ {
		extra = append(extra, packet.Packet{
			SrcIP: src, DstIP: dst,
			SrcPort: uint16(40000 + rng.Intn(20000)), DstPort: uint16(1 + p), Proto: 6,
			Size:        60,
			TimestampNs: uint64(rng.Int63n(int64(dur) + 1)),
		})
	}
	t.merge(extra)
}

// InjectSpike adds `flows` new short flows of `packetsPerFlow` packets each
// between fractional trace positions from and to (0 ≤ from < to ≤ 1) — the
// Fig. 12b traffic surge.
func (t *Trace) InjectSpike(flows, packetsPerFlow int, from, to float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var dur uint64 = 15e9
	if len(t.Packets) > 0 {
		dur = t.Packets[len(t.Packets)-1].TimestampNs
	}
	lo := uint64(from * float64(dur))
	hi := uint64(to * float64(dur))
	if hi <= lo {
		hi = lo + 1
	}
	extra := make([]packet.Packet, 0, flows*packetsPerFlow)
	for f := 0; f < flows; f++ {
		fl := randomFlow(rng)
		for p := 0; p < packetsPerFlow; p++ {
			extra = append(extra, packet.Packet{
				SrcIP: fl.src, DstIP: fl.dst,
				SrcPort: fl.sp, DstPort: fl.dp, Proto: fl.proto,
				Size:        samplePacketSize(rng, 700),
				TimestampNs: lo + uint64(rng.Int63n(int64(hi-lo))),
			})
		}
	}
	t.merge(extra)
}

func (t *Trace) merge(extra []packet.Packet) {
	t.Packets = append(t.Packets, extra...)
	sort.SliceStable(t.Packets, func(i, j int) bool {
		return t.Packets[i].TimestampNs < t.Packets[j].TimestampNs
	})
}

// Epochs splits the trace into n equal-duration measurement epochs. Empty
// epochs are preserved (as empty slices) so indices align with wall time.
func (t *Trace) Epochs(n int) []*Trace {
	if n <= 0 {
		return nil
	}
	out := make([]*Trace, n)
	for i := range out {
		out[i] = &Trace{}
	}
	if len(t.Packets) == 0 {
		return out
	}
	dur := t.Packets[len(t.Packets)-1].TimestampNs + 1
	for i := range t.Packets {
		idx := int(t.Packets[i].TimestampNs * uint64(n) / dur)
		if idx >= n {
			idx = n - 1
		}
		out[idx].Packets = append(out[idx].Packets, t.Packets[i])
	}
	return out
}

// Len returns the number of packets in the trace.
func (t *Trace) Len() int { return len(t.Packets) }
