package controlplane

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flymon/internal/analysis"
	"flymon/internal/core"
	"flymon/internal/core/algorithms"
	"flymon/internal/dataplane"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/telemetry"
)

// Task is a deployed measurement task.
type Task struct {
	ID        int
	Spec      TaskSpec
	Algorithm Algorithm
	D         int
	Groups    []int // pipeline group indices hosting the task
	Buckets   int   // granted buckets per row
	Delay     time.Duration

	handle   interface{ Uninstall() }
	newMasks int // hash-mask rules this deployment installed
}

// MemoryBytes returns the register memory granted to the task.
func (t *Task) MemoryBytes() int {
	type sized interface{ MemoryBytes() int }
	if s, ok := t.handle.(sized); ok {
		return s.MemoryBytes()
	}
	return 0
}

// Controller is FlyMon's control plane: it owns the CMU pipeline, compiles
// task specs into runtime rules, places tasks onto CMU Groups greedily
// (preferring groups that already generate the needed compressed keys,
// §3.4), and manages register memory with power-of-two partitions.
type Controller struct {
	mu       sync.Mutex
	pipeline *core.Pipeline
	groups   []*core.Group       // regular groups, then spliced groups
	regular  int                 // count of regular (non-recirculated) groups
	allocs   [][]*BuddyAllocator // [group][cmu]

	// snap is the RCU-published compiled data-plane configuration. Every
	// control-plane mutation rebuilds it under mu and swaps the pointer;
	// the packet path only ever loads it, so reconfiguration never blocks
	// traffic (the paper's on-the-fly property).
	snap atomic.Pointer[core.Snapshot]
	// ctxPool recycles per-worker scratch contexts for the packet path.
	ctxPool sync.Pool
	// workers is the controller's persistent batch-processing pool,
	// started lazily on the first ProcessParallel call and reused for
	// every batch thereafter (no per-call goroutine spawning). Closed by
	// Close.
	workers atomic.Pointer[core.WorkerPool]

	// sharded enables the mergeable-op lane engine: pool workers write
	// private cache-line-padded register lanes with plain stores and the
	// control plane reduces them on read. shardWorkers is the lane (and
	// pool) count. procGate orders lane access: ProcessParallel batches
	// hold it shared; drains and lane-clearing mutations hold it exclusive
	// (lane loads/stores are plain, so they must never overlap a batch).
	// Lock order is always mu before procGate.
	sharded      bool
	shardWorkers int
	procGate     sync.RWMutex
	shardCtr     metrics.ShardCounters

	// tele is the runtime telemetry registry (nil = telemetry off).
	// version counts snapshot publications; retired is a short ring of
	// recently retired snapshots still absorbing straggler telemetry
	// flushes from pooled worker contexts — publishLocked and every
	// telemetry fold settle the ring (telemetry.go).
	tele    *telemetry.Registry
	version uint64
	retired []*core.Snapshot

	tasks  map[int]*Task
	nextID int

	// Mode selects accurate vs efficient memory allocation (§3.4).
	Mode MemoryMode
	// Delay is the rule-install latency model (Table 3).
	Delay DelayModel
	// Partitions is the per-CMU partition limit (32 in the prototype,
	// §5.1: "a CMU can be split into 32 memory partitions").
	Partitions int

	// tcamBudget caps per-group preparation-stage TCAM entries.
	tcamBudget int
}

// Config parameterizes controller construction.
type Config struct {
	Groups     int
	Buckets    int // per-CMU register buckets (0 = core default)
	BitWidth   int // register bucket width (0 = core default)
	Partitions int // partitions per CMU (0 = 32)
	Mode       MemoryMode

	// TCAMEntriesPerGroup caps a group's preparation-stage TCAM load
	// (address translation + task-specific transforms). 0 takes the
	// hardware default: 50% of one MAU stage (Fig. 8's preparation share).
	TCAMEntriesPerGroup int

	// SplicedGroups adds up to 3 Appendix-E groups reachable only by
	// mirror+recirculation. The placer uses them as a last resort: tasks
	// landing there cost bandwidth (Pipeline.Recirculated tracks it).
	SplicedGroups int

	// Workers sizes the controller's persistent batch-processing pool and,
	// in sharded mode, the per-register lane count (0 = GOMAXPROCS).
	Workers int
	// ShardedState switches ProcessParallel's register updates from shared
	// CAS buckets to private per-worker lanes for exactly-mergeable ops
	// (Cond-ADD at the saturation bound, MAX, AND-OR, XOR): workers write
	// their own cache-line-padded lane with plain stores and the control
	// plane reduces lanes into shared state before any readout. Ops whose
	// merge would not be exact (sub-saturation thresholds, result-bus
	// consumers) transparently keep the CAS path. Query results are
	// identical in either mode; sharded mode trades a drain pass per
	// readout for a CAS-free packet path.
	ShardedState bool

	// Telemetry attaches a runtime telemetry registry: per-rule hit
	// counters wired into every compiled snapshot, a journal entry plus a
	// latency-histogram sample per reconfiguration, and register
	// occupancy/saturation gauges folded on scrape (the controller
	// registers itself as the registry's data-plane source). Nil keeps
	// the data plane entirely uninstrumented.
	Telemetry *telemetry.Registry
}

// DefaultTCAMEntriesPerGroup is the preparation stage's TCAM share: half of
// one MAU stage's 24 × 512 entries.
const DefaultTCAMEntriesPerGroup = dataplane.TCAMBlocksPerStage * dataplane.TCAMBlockEntries / 2

// NewController builds a controller over a fresh pipeline.
func NewController(cfg Config) *Controller {
	if cfg.Groups <= 0 {
		cfg.Groups = 1
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 32
	}
	if cfg.TCAMEntriesPerGroup <= 0 {
		cfg.TCAMEntriesPerGroup = DefaultTCAMEntriesPerGroup
	}
	if cfg.SplicedGroups < 0 {
		cfg.SplicedGroups = 0
	}
	if cfg.SplicedGroups > core.StagesPerGroup-1 {
		cfg.SplicedGroups = core.StagesPerGroup - 1
	}
	total := cfg.Groups + cfg.SplicedGroups
	groups := make([]*core.Group, total)
	for i := range groups {
		groups[i] = core.NewGroup(core.GroupConfig{ID: i, Buckets: cfg.Buckets, BitWidth: cfg.BitWidth})
		// Bootstrap configuration: every group's first compression unit
		// digests the full 5-tuple. Most tasks key on the 5-tuple, so the
		// greedy placer reuses this key and their deployment needs no
		// hash-mask rule at all — the paper's low per-algorithm deployment
		// delays (Table 3) rely on exactly this reuse.
		_ = groups[i].ConfigureUnit(0, packet.KeyFiveTuple)
	}
	pl := core.NewPipelineWith(groups[:cfg.Groups]...)
	for _, g := range groups[cfg.Groups:] {
		if err := pl.AddSpliced(g); err != nil {
			panic(err) // bounded above; unreachable
		}
	}
	c := &Controller{
		pipeline:   pl,
		groups:     groups,
		regular:    cfg.Groups,
		tasks:      make(map[int]*Task),
		nextID:     1,
		Mode:       cfg.Mode,
		Delay:      DefaultDelayModel(),
		Partitions: cfg.Partitions,
		tcamBudget: cfg.TCAMEntriesPerGroup,
	}
	for gi := 0; gi < total; gi++ {
		g := c.groups[gi]
		cmus := make([]*BuddyAllocator, g.CMUs())
		for ci := range cmus {
			size := g.CMU(ci).Register().Size()
			minBlock := size / cfg.Partitions
			if minBlock < 1 {
				minBlock = 1
			}
			// Round the minimum block to a power of two.
			mb := 1
			for mb < minBlock {
				mb <<= 1
			}
			cmus[ci] = NewBuddyAllocator(size, mb)
		}
		c.allocs = append(c.allocs, cmus)
	}
	c.shardWorkers = cfg.Workers
	if c.shardWorkers <= 0 {
		c.shardWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.ShardedState {
		c.sharded = true
		// Lanes must exist before the first Compile so the snapshot's
		// routing verdicts see them.
		pl.EnableSharding(c.shardWorkers)
	}
	c.ctxPool.New = func() any { return core.NewProcCtxUnique() }
	c.tele = cfg.Telemetry
	if c.tele != nil {
		pl.SetTelemetry(c.tele)
		c.tele.SetSource(c)
	}
	c.publishLocked()
	return c
}

// publishLocked compiles the pipeline's current configuration and swaps in
// the new snapshot. Callers hold c.mu (or are the constructor). The
// displaced snapshot joins the retired ring so its unsettled telemetry
// counts are folded into the durable counters (telemetry.go).
func (c *Controller) publishLocked() {
	old := c.snap.Swap(c.pipeline.Compile())
	c.version++
	if c.tele == nil {
		return
	}
	c.tele.SetVersion(c.version)
	if old != nil {
		c.retired = append(c.retired, old)
	}
	c.settleRetiredLocked()
}

// SnapshotVersion returns how many data-plane snapshots have been
// published (every mutation republishes; the constructor publishes v1).
func (c *Controller) SnapshotVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Republish recompiles and republishes the data-plane snapshot. The
// controller does this automatically after every task-mutating call; it is
// needed only after mutating the pipeline directly through Pipeline().
func (c *Controller) Republish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := c.teleMutation("republish")
	c.publishLocked()
	done(0, "", nil)
}

// Pipeline exposes the data plane (the daemon feeds packets through it).
func (c *Controller) Pipeline() *core.Pipeline { return c.pipeline }

// Process pushes one packet through the data plane. The packet path is
// lock-free: it loads the RCU-published snapshot and executes against its
// frozen rule copies, so concurrent control-channel operations (rule
// installs, freezes, memory moves) never stall traffic — the switch
// hardware property FlyMon's on-the-fly reconfiguration relies on.
// Process is safe for concurrent callers.
func (c *Controller) Process(p *packet.Packet) {
	snap := c.snap.Load()
	pc := c.ctxPool.Get().(*core.ProcCtx)
	snap.Process(pc, p)
	c.ctxPool.Put(pc)
}

// ProcessBatch pushes a packet slice through the data plane sequentially
// on one worker context, against one consistent snapshot. The context comes
// from the controller's pool with its rng rewound to the fixed seed, so
// identical batches replay identically — bit-for-bit what a fresh
// NewProcCtx would compute — while the context's digest and telemetry
// scratch stay warm across batches, keeping the per-batch path
// allocation-free. ProcessParallel(ps, 1) is bit-for-bit equal to
// ProcessBatch(ps).
func (c *Controller) ProcessBatch(ps []packet.Packet) {
	if len(ps) == 0 {
		return
	}
	snap := c.snap.Load()
	pc := c.ctxPool.Get().(*core.ProcCtx)
	pc.Reseed()
	snap.ProcessBatchCtx(pc, ps)
	c.ctxPool.Put(pc)
}

// ProcessParallel shards a packet batch across the controller's persistent
// worker pool — the multi-pipe model: every worker executes against the
// same consistent snapshot with its own reusable scratch context (unique
// rng stream), and register updates go through per-bucket atomic CAS.
// workers selects the shard count; <= 0 uses GOMAXPROCS; workers == 1 is
// bit-for-bit identical to ProcessBatch. The pool's goroutines are started
// once, on the first call, and reused for every subsequent batch.
//
// In sharded mode (Config.ShardedState) each pool worker owns a private
// register lane: compiled rules whose ops merge exactly write the lane with
// plain stores — no CAS, no contended counter — and the control plane
// reduces lanes into shared state before any readout. Batches hold the
// procGate shared so a drain never overlaps lane writes.
func (c *Controller) ProcessParallel(ps []packet.Packet, workers int) {
	if len(ps) == 0 {
		return
	}
	if workers == 1 {
		// Same pooled-context sequential path as ProcessBatch: identical
		// results, and no per-batch context allocation (the readbatch
		// replay engine hits this arm once per batch on one-core hosts).
		c.ProcessBatch(ps)
		return
	}
	snap := c.snap.Load()
	// Resolve the pool before taking the gate: workerPool may take c.mu,
	// and the lock order is mu before procGate everywhere.
	pool := c.workerPool()
	if c.sharded {
		c.procGate.RLock()
		defer c.procGate.RUnlock()
	}
	pool.Process(snap, ps, workers)
}

// ProcessSource drains a pull-based packet source (the mmap replay ring,
// internal/mmtrace) through the controller's persistent worker pool,
// returning when the source is exhausted. Every worker reloads the
// RCU-published snapshot per batch, so task deploys, freezes, and resizes
// issued mid-replay take effect at the next batch boundary — replay
// behaves exactly like live traffic under on-the-fly reconfiguration. In
// sharded mode each batch holds the procGate shared, so drains and
// queries interleave with a long replay instead of stalling behind it.
func (c *Controller) ProcessSource(src core.BatchSource) {
	pool := c.workerPool()
	var gate *sync.RWMutex
	if c.sharded {
		gate = &c.procGate
	}
	pool.ProcessSource(c.snap.Load, src, gate)
}

// ProcessFrameSource drains a pull-based frame source through the worker
// pool with the FrameView-native engine: spans of raw mmapped records
// execute stage-at-a-time with no packet materialization, falling back to
// per-frame decode only for snapshots the vectorizer rejects (spliced
// groups, probabilistic rules). Reconfiguration, gating, and results are
// identical to ProcessSource over the same frames — only the per-packet
// decode and dispatch cost is gone.
func (c *Controller) ProcessFrameSource(src core.FrameSource) {
	pool := c.workerPool()
	var gate *sync.RWMutex
	if c.sharded {
		gate = &c.procGate
	}
	pool.ProcessFrameSource(c.snap.Load, src, gate)
}

// workerPool returns the controller's persistent pool, starting it on
// first use (Config.Workers workers, lane-owning in sharded mode).
func (c *Controller) workerPool() *core.WorkerPool {
	if p := c.workers.Load(); p != nil {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.workers.Load(); p != nil {
		return p
	}
	var p *core.WorkerPool
	if c.sharded {
		p = core.NewShardedWorkerPool(c.shardWorkers)
	} else {
		p = core.NewWorkerPool(c.shardWorkers)
	}
	c.workers.Store(p)
	return p
}

// drainShards folds every dirty register lane back into shared state so a
// control-plane read observes complete counts. It holds the procGate
// exclusively for the scan (lane loads are plain; no batch may overlap).
// Callers hold c.mu. No-op in shared mode and when no batch has written a
// lane since the last drain (the registers' dirtiness cursor).
func (c *Controller) drainShards() {
	if !c.sharded {
		return
	}
	start := time.Now()
	c.procGate.Lock()
	n := c.pipeline.DrainShards()
	c.procGate.Unlock()
	c.shardCtr.RecordDrain(n)
	if c.tele != nil {
		// Includes the gate wait: a scrape's drain latency is the time a
		// reader stalls behind in-flight batches, which is the number that
		// matters operationally.
		c.tele.DrainLatency.Observe(time.Since(start))
	}
}

// quiesce blocks the sharded batch path for the duration of a mutation
// that reads or clears register lanes and returns the release func.
// No-op in shared mode. Callers hold c.mu; the gate is not reentrant, so a
// quiesced caller must use drainGateHeld, never drainShards.
func (c *Controller) quiesce() func() {
	if !c.sharded {
		return func() {}
	}
	c.procGate.Lock()
	return c.procGate.Unlock
}

// drainGateHeld folds dirty lanes while the caller already holds the
// procGate exclusively (via quiesce).
func (c *Controller) drainGateHeld() {
	if !c.sharded {
		return
	}
	start := time.Now()
	c.shardCtr.RecordDrain(c.pipeline.DrainShards())
	if c.tele != nil {
		c.tele.DrainLatency.Observe(time.Since(start))
	}
}

// DrainShards folds every dirty register lane into shared state and
// returns the number of lane buckets folded. Query methods drain
// automatically; this is for callers reading registers directly through
// Pipeline(). No-op (zero) in shared mode.
func (c *Controller) DrainShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.sharded {
		return 0
	}
	start := time.Now()
	c.procGate.Lock()
	n := c.pipeline.DrainShards()
	c.procGate.Unlock()
	c.shardCtr.RecordDrain(n)
	if c.tele != nil {
		c.tele.DrainLatency.Observe(time.Since(start))
	}
	return n
}

// Sharded reports whether the controller runs the sharded lane engine.
func (c *Controller) Sharded() bool { return c.sharded }

// Workers returns the controller's batch-pool width (the lane count in
// sharded mode).
func (c *Controller) Workers() int { return c.shardWorkers }

// ShardStats summarizes the sharded engine: lane count, the live
// snapshot's compile-time routing verdicts, and drain counters.
func (c *Controller) ShardStats() metrics.ShardStats {
	st := c.shardCtr.Stats()
	if c.sharded {
		st.Workers = c.shardWorkers
	}
	st.ShardedRules, st.FallbackRules = c.snap.Load().ShardedRules()
	return st
}

// Close releases the controller's background resources (the worker pool).
// The controller remains usable for sequential processing and control-
// plane queries; only ProcessParallel must not be called after Close.
func (c *Controller) Close() {
	if p := c.workers.Swap(nil); p != nil {
		p.Close()
	}
}

// Tasks returns deployed tasks sorted by ID.
func (c *Controller) Tasks() []*Task {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Task, 0, len(c.tasks))
	for _, t := range c.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Task returns the deployed task with the given ID.
func (c *Controller) Task(id int) (*Task, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.taskLocked(id)
}

func (c *Controller) taskLocked(id int) (*Task, error) {
	t, ok := c.tasks[id]
	if !ok {
		return nil, fmt.Errorf("controlplane: no task %d", id)
	}
	return t, nil
}

// AddTask compiles and deploys a task spec, returning the deployed task
// with its modeled deployment delay. Deployment installs runtime rules
// only — running traffic and co-resident tasks are untouched.
func (c *Controller) AddTask(spec TaskSpec) (*Task, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// A failed placement rolls back via Uninstall, which clears register
	// lanes — quiesce so no batch writes them concurrently.
	defer c.quiesce()()
	done := c.teleMutation("deploy")
	t, err := c.addTaskLocked(spec)
	tid := -1
	if t != nil {
		tid = t.ID
	}
	done(tid, spec.Name, err)
	return t, err
}

// AddTaskAt deploys a task spec under a caller-chosen ID — the
// reconciliation primitive: a fleet controller re-deploying a desired task
// onto a restarted daemon must reproduce the exact ID its mirror assigned,
// even when removals have left gaps in the sequence. The ID counter is
// advanced past the pinned ID so later plain AddTask calls never collide,
// which keeps a re-converged daemon's future assignments aligned with the
// mirror's.
func (c *Controller) AddTaskAt(id int, spec TaskSpec) (*Task, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if id <= 0 {
		return nil, fmt.Errorf("controlplane: task ID %d must be positive", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.quiesce()()
	done := c.teleMutation("deploy")
	if _, exists := c.tasks[id]; exists {
		err := fmt.Errorf("controlplane: task %d already deployed", id)
		done(id, spec.Name, err)
		return nil, err
	}
	saved := c.nextID
	c.nextID = id
	t, err := c.addTaskLocked(spec)
	if err != nil {
		c.nextID = saved
		done(id, spec.Name, err)
		return nil, err
	}
	if id >= saved {
		c.nextID = id + 1
	} else {
		c.nextID = saved
	}
	done(id, spec.Name, nil)
	return t, nil
}

func (c *Controller) addTaskLocked(spec TaskSpec) (*Task, error) {
	alg := spec.ChooseAlgorithm()
	d := spec.D
	if d == 0 {
		d = DefaultD(alg)
	}
	id := c.nextID

	task, err := c.place(id, spec, alg, d)
	if err != nil {
		return nil, err
	}
	c.nextID++
	c.tasks[id] = task
	task.Delay = c.Delay.Delay(c.countRules(task))
	c.publishLocked()
	return task, nil
}

// place tries candidate placements in greedy preference order and installs
// the first that fits.
func (c *Controller) place(id int, spec TaskSpec, alg Algorithm, d int) (*Task, error) {
	need := alg.GroupsNeeded(d)
	n := c.regular
	if need > n {
		return nil, fmt.Errorf("controlplane: %s needs %d groups, pipeline has %d", alg, need, n)
	}

	// Candidate starting groups, preferring groups that already produce
	// the task's compressed key (§3.4 greedy strategy). Spliced
	// (recirculated) groups host only single-group tasks and come last:
	// they cost bandwidth (Appendix E).
	order := make([]int, 0, len(c.groups))
	var rest, spliced []int
	for gi := 0; gi+need <= n; gi++ {
		if c.groups[gi].FindUnit(spec.Key) >= 0 {
			order = append(order, gi)
		} else {
			rest = append(rest, gi)
		}
	}
	if need == 1 {
		for gi := c.regular; gi < len(c.groups); gi++ {
			spliced = append(spliced, gi)
		}
	}
	order = append(order, rest...)
	order = append(order, spliced...)

	var firstErr error
	for _, gi := range order {
		task, err := c.installAt(gi, id, spec, alg, d)
		if err == nil {
			return task, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("controlplane: no placement for %s", alg)
	}
	return nil, fmt.Errorf("controlplane: cannot place task %q (%s): %w", spec.Name, alg, firstErr)
}

// installAt attempts a full installation of the task starting at group gi,
// trying each feasible CMU offset within the group, rolling back
// allocations on failure.
func (c *Controller) installAt(gi, id int, spec TaskSpec, alg Algorithm, d int) (*Task, error) {
	need := alg.GroupsNeeded(d)
	rowCount := d
	if alg == AlgCounterBraids {
		rowCount = 2
	}
	if alg == AlgMaxInterval {
		rowCount = 3
	}

	if need > 1 {
		return c.installSpan(gi, id, spec, alg, d, need, rowCount, 0)
	}
	// Single-group algorithms: a task using fewer rows than the group has
	// CMUs can start at any offset — this is what lets three d=1 tasks per
	// partition level share one group (the 96-task figure, §5.1).
	cmus := c.groups[gi].CMUs()
	var firstErr error
	for off := 0; off+rowCount <= cmus; off++ {
		task, err := c.installSpan(gi, id, spec, alg, d, need, rowCount, off)
		if err == nil {
			return task, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// installSpan allocates partitions and installs the algorithm with a fixed
// CMU offset.
func (c *Controller) installSpan(gi, id int, spec TaskSpec, alg Algorithm,
	d, need, rowCount, offset int) (*Task, error) {
	groups := make([]*core.Group, need)
	groupIdx := make([]int, need)
	for j := 0; j < need; j++ {
		groups[j] = c.groups[gi+j]
		groupIdx[j] = gi + j
	}

	type grant struct {
		group, cmu, base int
	}
	var grants []grant
	rollback := func() {
		for _, g := range grants {
			_ = c.allocs[g.group][g.cmu].Free(g.base)
		}
	}

	rows := make([]core.MemRange, rowCount)
	granted := 0
	for i := 0; i < rowCount; i++ {
		g, cmu := gi, offset+i
		if need > 1 {
			g, cmu = gi+i, 0
		}
		alloc := c.allocs[g][cmu]
		want := c.Mode.PartitionFor(spec.MemBuckets, allocMin(alloc), alloc.Size())
		base, got, err := alloc.Alloc(want)
		if err != nil {
			rollback()
			return nil, err
		}
		grants = append(grants, grant{g, cmu, base})
		rows[i] = core.MemRange{Base: base, Buckets: got}
		granted = got
	}

	// Snapshot compression-unit occupancy to count how many hash-mask
	// rules this deployment installs (for the delay model).
	liveBefore := 0
	for _, g := range groups {
		for u := 0; u < g.Units(); u++ {
			if len(g.UnitSpec(u).Parts) > 0 {
				liveBefore++
			}
		}
	}
	handle, err := c.installAlgorithm(groups, id, spec, alg, d, rows, offset)
	if err != nil {
		rollback()
		return nil, err
	}
	// Resource manager: the deployment must fit every touched group's
	// preparation-stage TCAM budget (address translation + transforms).
	for _, g := range groups {
		if used := c.groupTCAMEntries(g); used > c.tcamBudget {
			handle.Uninstall()
			rollback()
			return nil, fmt.Errorf("controlplane: group %d TCAM load %d exceeds budget %d",
				g.ID(), used, c.tcamBudget)
		}
	}
	liveAfter := 0
	for _, g := range groups {
		for u := 0; u < g.Units(); u++ {
			if len(g.UnitSpec(u).Parts) > 0 {
				liveAfter++
			}
		}
	}
	return &Task{
		ID: id, Spec: spec, Algorithm: alg, D: d,
		Groups: groupIdx, Buckets: granted, handle: handle,
		newMasks: liveAfter - liveBefore,
	}, nil
}

func allocMin(b *BuddyAllocator) int { return b.minBlock }

// installAlgorithm dispatches to the algorithm installers.
func (c *Controller) installAlgorithm(groups []*core.Group, id int, spec TaskSpec,
	alg Algorithm, d int, rows []core.MemRange, offset int) (interface{ Uninstall() }, error) {
	g := groups[0]
	param := c.paramSource(spec)
	switch alg {
	case AlgCMS:
		t, err := algorithms.InstallCMS(g, id, spec.Filter, spec.Key, param, d, rows, offset)
		if err != nil {
			return nil, err
		}
		c.applyProb(id, spec.Prob)
		return t, nil
	case AlgSuMaxSum:
		t, err := algorithms.InstallSuMaxSum(groups, id, spec.Filter, spec.Key, param, rows)
		if err != nil {
			return nil, err
		}
		c.applyProb(id, spec.Prob)
		return t, nil
	case AlgMRAC:
		return algorithms.InstallMRAC(g, id, spec.Filter, spec.Key, rows[:1], offset)
	case AlgTower:
		widths := towerWidths(g.CMU(offset).Register().BitWidth(), d)
		return algorithms.InstallTower(g, id, spec.Filter, spec.Key, widths, rows[:len(widths)], offset)
	case AlgCounterBraids:
		B := g.CMU(offset).Register().BitWidth()
		return algorithms.InstallCounterBraids(g, id, spec.Filter, spec.Key, B/2, B, rows[:2], offset)
	case AlgBeauCoup:
		return algorithms.InstallBeauCoup(g, id, spec.Filter, spec.Key, spec.Param.Key,
			spec.Threshold, d, rows, offset)
	case AlgHLL:
		return algorithms.InstallHLL(g, id, spec.Filter, spec.Param.Key, rows[0], offset)
	case AlgLinearCounting:
		return algorithms.InstallLinearCounting(g, id, spec.Filter, spec.Param.Key, rows[:1], offset)
	case AlgBloom:
		return algorithms.InstallBloom(g, id, spec.Filter, spec.Param.Key, d, true, rows, offset)
	case AlgSuMaxMax:
		return algorithms.InstallSuMaxMax(g, id, spec.Filter, spec.Key, param, d, rows, offset)
	case AlgMaxInterval:
		return algorithms.InstallMaxInterval([3]*core.Group{groups[0], groups[1], groups[2]},
			id, spec.Filter, spec.Key, rows)
	default:
		return nil, fmt.Errorf("controlplane: algorithm %s not installable", alg)
	}
}

// applyProb sets probabilistic execution on every installed rule of a task.
func (c *Controller) applyProb(id int, prob float64) {
	if prob <= 0 || prob >= 1 {
		return
	}
	for _, loc := range c.pipeline.Locate(id) {
		loc.Rule.Prob = prob
	}
}

func (c *Controller) paramSource(spec TaskSpec) core.ParamSource {
	switch spec.Param.Kind {
	case ParamPacketBytes:
		return core.PacketSize()
	case ParamQueueLength:
		return core.QueueLength()
	case ParamQueueDelay:
		return core.QueueDelay()
	default:
		return core.Const(1)
	}
}

// towerWidths returns descending counter widths for a d-level tower over
// B-bit buckets (e.g. B=16, d=3 → 8, 4, 2, matching Appendix D).
func towerWidths(B, d int) []int {
	out := make([]int, 0, d)
	w := B / 2
	for i := 0; i < d && w >= 2; i++ {
		out = append(out, w)
		w /= 2
	}
	if len(out) == 0 {
		out = []int{B}
	}
	return out
}

// countRules tallies the runtime rules task deployment installed, for the
// delay model.
func (c *Controller) countRules(t *Task) RuleCount {
	var rc RuleCount
	rc.Common = 1 // task filter / task-id assignment
	locs := c.pipeline.Locate(t.ID)
	for _, loc := range locs {
		rc.Common += 2 // key+param selection (init) and operation selection
		reg := loc.Group.CMU(loc.CMU).Register()
		parts := core.PartitionsOf(reg.Size(), loc.Rule.Mem.Buckets)
		rc.TCAMEntries += core.TCAMTranslationEntries(parts)
		rc.TCAMEntries += loc.Rule.Prep.TCAMEntries()
	}
	rc.HashMasks = t.newMasks
	return rc
}

// RemoveTask uninstalls a task, clears its register partitions, and
// releases its memory. Removal is a rule deletion — traffic continues.
func (c *Controller) RemoveTask(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Uninstall clears the task's register lanes with plain stores; its
	// freed partitions may be re-granted, so stale lane state must not
	// survive. Quiesce the batch path for the duration.
	defer c.quiesce()()
	done := c.teleMutation("remove")
	err := c.removeTaskLocked(id)
	done(id, "", err)
	return err
}

func (c *Controller) removeTaskLocked(id int) error {
	t, ok := c.tasks[id]
	if !ok {
		return fmt.Errorf("controlplane: no task %d", id)
	}
	// Collect partitions before the rules disappear.
	type grant struct{ group, cmu, base int }
	var grants []grant
	for _, loc := range c.pipeline.Locate(id) {
		grants = append(grants, grant{loc.Group.ID(), loc.CMU, loc.Rule.Mem.Base})
	}
	t.handle.Uninstall()
	for _, g := range grants {
		if err := c.allocs[g.group][g.cmu].Free(g.base); err != nil {
			return err
		}
	}
	delete(c.tasks, id)
	// The task's per-rule counters go with it — a re-add (resize keeps the
	// ID) re-registers fresh counters at the new coordinates.
	if c.tele != nil {
		c.tele.DropTask(id)
	}
	c.publishLocked()
	return nil
}

// ResizeTask reallocates a task's memory (§6, memory reallocation
// strategy): deploy a fresh instance with the new size, divert traffic to
// it, and reclaim the old partitions. The task keeps its ID; its counters
// restart (the paper freezes the old task's data for readout — here the
// old partitions are read out and returned before reclamation).
func (c *Controller) ResizeTask(id, newBuckets int) (old [][]uint32, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := c.teleMutation("resize")
	defer func() { done(id, fmt.Sprintf("buckets=%d", newBuckets), err) }()
	t, ok := c.tasks[id]
	if !ok {
		return nil, fmt.Errorf("controlplane: no task %d", id)
	}
	// Quiesce, then fold lanes so the readout below is complete and the
	// memory move never races lane writers.
	defer c.quiesce()()
	c.drainGateHeld()
	old, _ = c.pipeline.ReadTask(id)
	origSpec := t.Spec
	spec := origSpec
	spec.MemBuckets = newBuckets
	if err := c.removeTaskLocked(id); err != nil {
		return nil, err
	}
	// Re-add under the same ID.
	savedNext := c.nextID
	c.nextID = id
	_, err = c.addTaskLocked(spec)
	if err != nil {
		// The new size does not fit: restore the original deployment so a
		// failed resize never destroys the task.
		if _, rerr := c.addTaskLocked(origSpec); rerr != nil {
			c.nextID = savedNext
			return old, fmt.Errorf("controlplane: resize of task %d failed (%v) and restore failed: %w", id, err, rerr)
		}
		c.nextID = savedNext
		return old, fmt.Errorf("controlplane: resize of task %d failed: %w", id, err)
	}
	c.nextID = savedNext
	return old, nil
}

// FreezeTask withdraws a task's data-plane rules so it stops matching
// traffic while its register partitions stay allocated and readable —
// the paper's freeze-and-divert strategy (§6). Frozen tasks still answer
// control-plane queries.
func (c *Controller) FreezeTask(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := c.teleMutation("freeze")
	locs := c.pipeline.Locate(id)
	if len(locs) == 0 {
		err := fmt.Errorf("controlplane: no task %d", id)
		done(id, "", err)
		return err
	}
	for _, loc := range locs {
		loc.Rule.Disabled = true
	}
	c.publishLocked()
	done(id, "", nil)
	return nil
}

// ThawTask re-enables a frozen task after verifying no live rule with
// intersecting traffic now shares its CMUs (a task deployed into the
// frozen task's traffic slice in the meantime makes thawing unsafe).
func (c *Controller) ThawTask(id int) (err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := c.teleMutation("thaw")
	defer func() { done(id, "", err) }()
	locs := c.pipeline.Locate(id)
	if len(locs) == 0 {
		return fmt.Errorf("controlplane: no task %d", id)
	}
	for _, loc := range locs {
		for _, other := range loc.Group.CMU(loc.CMU).Rules() {
			if other.TaskID == id || other.Disabled {
				continue
			}
			if other.Filter.Intersects(loc.Rule.Filter) {
				return fmt.Errorf("controlplane: cannot thaw task %d: task %d now covers its traffic on group %d CMU %d",
					id, other.TaskID, loc.Group.ID(), loc.CMU)
			}
		}
	}
	for _, loc := range locs {
		loc.Rule.Disabled = false
	}
	c.publishLocked()
	return nil
}

// SplitTask replaces a task with two subtasks whose filters partition the
// original's traffic by source prefix (§3.1.1: splitting a heavy task
// halves each subtask's flow population, cutting compressed-key collision
// rates at the cost of a second task's resources). Each subtask keeps the
// original's memory request. The original task is removed; the subtasks
// get fresh IDs.
func (c *Controller) SplitTask(id int) (lo, hi *Task, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.quiesce()() // removal clears lanes
	done := c.teleMutation("split")
	defer func() {
		detail := ""
		if lo != nil && hi != nil {
			detail = fmt.Sprintf("into=%d,%d", lo.ID, hi.ID)
		}
		done(id, detail, err)
	}()
	t, ok := c.tasks[id]
	if !ok {
		return nil, nil, fmt.Errorf("controlplane: no task %d", id)
	}
	loF, hiF, ok := t.Spec.Filter.SplitSrc()
	if !ok {
		return nil, nil, fmt.Errorf("controlplane: task %d filter %q cannot split further", id, t.Spec.Filter)
	}
	spec := t.Spec
	if err := c.removeTaskLocked(id); err != nil {
		return nil, nil, err
	}
	loSpec, hiSpec := spec, spec
	loSpec.Name, loSpec.Filter = spec.Name+"-a", loF
	hiSpec.Name, hiSpec.Filter = spec.Name+"-b", hiF
	lo, err = c.addTaskLocked(loSpec)
	if err != nil {
		return nil, nil, fmt.Errorf("controlplane: split of task %d: %w", id, err)
	}
	hi, err = c.addTaskLocked(hiSpec)
	if err != nil {
		// Roll back to a consistent state: keep the lo subtask deployed
		// (it covers half the original traffic) but report the failure.
		return lo, nil, fmt.Errorf("controlplane: split of task %d: second subtask: %w", id, err)
	}
	return lo, hi, nil
}

// groupTCAMEntries sums a group's preparation-stage TCAM load.
func (c *Controller) groupTCAMEntries(g *core.Group) int {
	total := 0
	for ci := 0; ci < g.CMUs(); ci++ {
		cmu := g.CMU(ci)
		for _, rule := range cmu.Rules() {
			parts := core.PartitionsOf(cmu.Register().Size(), rule.Mem.Buckets)
			total += core.TCAMTranslationEntries(parts) + rule.Prep.TCAMEntries()
		}
	}
	return total
}

// GroupReport is one CMU Group's runtime-resource occupancy as seen by the
// control plane — what an operator inspects before placing a new task.
type GroupReport struct {
	Group int
	// Keys lists the key specs the group's compression units currently
	// digest ("" = idle unit).
	Keys []string
	// Rules is the number of task rules installed across the group's CMUs.
	Rules int
	// TCAMEntries is the preparation-stage TCAM load: per-task address
	// translation plus task-specific transform entries.
	TCAMEntries int
	// FreeBuckets is the unallocated register memory per CMU.
	FreeBuckets []int
	// Tasks lists the task IDs with at least one rule in the group.
	Tasks []int
}

// ResourceReport summarizes every group's occupancy.
func (c *Controller) ResourceReport() []GroupReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]GroupReport, 0, len(c.groups))
	for gi := range c.groups {
		g := c.groups[gi]
		r := GroupReport{Group: gi}
		for u := 0; u < g.Units(); u++ {
			spec := g.UnitSpec(u)
			if len(spec.Parts) == 0 {
				r.Keys = append(r.Keys, "")
			} else {
				r.Keys = append(r.Keys, spec.String())
			}
		}
		seen := map[int]bool{}
		for ci := 0; ci < g.CMUs(); ci++ {
			cmu := g.CMU(ci)
			r.FreeBuckets = append(r.FreeBuckets, c.allocs[gi][ci].FreeBuckets())
			for _, rule := range cmu.Rules() {
				r.Rules++
				parts := core.PartitionsOf(cmu.Register().Size(), rule.Mem.Buckets)
				r.TCAMEntries += core.TCAMTranslationEntries(parts) + rule.Prep.TCAMEntries()
				seen[rule.TaskID] = true
			}
		}
		for id := range seen {
			r.Tasks = append(r.Tasks, id)
		}
		sort.Ints(r.Tasks)
		out = append(out, r)
	}
	return out
}

// FreeBuckets returns the unallocated buckets of every CMU, indexed
// [group][cmu].
func (c *Controller) FreeBuckets() [][]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]int, len(c.allocs))
	for gi, cmus := range c.allocs {
		out[gi] = make([]int, len(cmus))
		for ci, a := range cmus {
			out[gi][ci] = a.FreeBuckets()
		}
	}
	return out
}

// --- Query interface (control-plane readout + analysis) ---
//
// Every query drains dirty register lanes first (drainShards) so sharded-
// mode readouts observe complete, merged counts — identical to what the
// shared-CAS mode would report. The drain is a no-op in shared mode and
// skipped entirely when no batch ran since the last drain.

// EstimateKey returns the task's per-key estimate (frequency, max, or
// distinct count depending on the algorithm).
func (c *Controller) EstimateKey(id int, k packet.CanonicalKey) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainShards()
	t, err := c.taskLocked(id)
	if err != nil {
		return 0, err
	}
	switch h := t.handle.(type) {
	case *algorithms.CMSTask:
		return float64(h.EstimateKey(k)), nil
	case *algorithms.MRACTask:
		return float64(h.EstimateKey(k)), nil
	case *algorithms.SuMaxSumTask:
		return float64(h.EstimateKey(k)), nil
	case *algorithms.SuMaxMaxTask:
		return float64(h.EstimateKey(k)), nil
	case *algorithms.TowerTask:
		return float64(h.EstimateKey(k)), nil
	case *algorithms.CounterBraidsTask:
		return float64(h.EstimateKey(k)), nil
	case *algorithms.MaxIntervalTask:
		return float64(h.EstimateKey(k)), nil
	case *algorithms.BeauCoupTask:
		return h.EstimateDistinct(k), nil
	default:
		return 0, fmt.Errorf("controlplane: task %d (%s) has no per-key estimate", id, t.Algorithm)
	}
}

// Cardinality returns a distinct-count task's whole-traffic estimate.
func (c *Controller) Cardinality(id int) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainShards()
	t, err := c.taskLocked(id)
	if err != nil {
		return 0, err
	}
	switch h := t.handle.(type) {
	case *algorithms.HLLTask:
		return h.Estimate()
	case *algorithms.LinearCountingTask:
		return h.Estimate()
	default:
		return 0, fmt.Errorf("controlplane: task %d (%s) is not a cardinality task", id, t.Algorithm)
	}
}

// Contains reports Bloom-filter membership for key k.
func (c *Controller) Contains(id int, k packet.CanonicalKey) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainShards()
	t, err := c.taskLocked(id)
	if err != nil {
		return false, err
	}
	h, ok := t.handle.(*algorithms.BloomTask)
	if !ok {
		return false, fmt.Errorf("controlplane: task %d (%s) is not an existence task", id, t.Algorithm)
	}
	return h.ContainsKey(k), nil
}

// Reported returns the candidates a detection task reports.
func (c *Controller) Reported(id int, candidates []packet.CanonicalKey) (map[packet.CanonicalKey]bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainShards()
	t, err := c.taskLocked(id)
	if err != nil {
		return nil, err
	}
	switch h := t.handle.(type) {
	case *algorithms.BeauCoupTask:
		return h.Reported(candidates), nil
	case *algorithms.CMSTask:
		return h.HeavyHitters(candidates, uint32(t.Spec.Threshold)), nil
	case *algorithms.SuMaxSumTask:
		return h.HeavyHitters(candidates, uint32(t.Spec.Threshold)), nil
	default:
		return nil, fmt.Errorf("controlplane: task %d (%s) is not a detection task", id, t.Algorithm)
	}
}

// Distribution returns an MRAC task's estimated flow-size distribution and
// entropy.
func (c *Controller) Distribution(id int) (map[uint64]float64, float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainShards()
	t, err := c.taskLocked(id)
	if err != nil {
		return nil, 0, err
	}
	h, ok := t.handle.(*algorithms.MRACTask)
	if !ok {
		return nil, 0, fmt.Errorf("controlplane: task %d (%s) is not a distribution task", id, t.Algorithm)
	}
	counters, err := h.Counters()
	if err != nil {
		return nil, 0, err
	}
	dist := analysis.MRACDistribution(counters, 1024, 10)
	return dist, metrics.EntropyFromDistribution(dist), nil
}

// ReadRegisters reads a task's raw register partitions.
func (c *Controller) ReadRegisters(id int) ([][]uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainShards()
	return c.pipeline.ReadTask(id)
}

// ResetTaskCounters zeroes a task's register partitions — the epoch
// rollover every sketch-based system performs between measurement windows.
func (c *Controller) ResetTaskCounters(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.quiesce()() // ClearRange zeroes lanes with plain stores
	done := c.teleMutation("reset")
	locs := c.pipeline.Locate(id)
	if len(locs) == 0 {
		err := fmt.Errorf("controlplane: no task %d", id)
		done(id, "", err)
		return err
	}
	for _, loc := range locs {
		loc.Group.CMU(loc.CMU).Register().ClearRange(loc.Rule.Mem.Base, loc.Rule.Mem.Buckets)
	}
	done(id, "", nil)
	return nil
}

// TaskHandle exposes the installed algorithm object for a task (the typed
// query surface used by the experiment harness).
func (c *Controller) TaskHandle(id int) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainShards()
	t, err := c.taskLocked(id)
	if err != nil {
		return nil, err
	}
	return t.handle, nil
}
