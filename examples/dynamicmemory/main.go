// Dynamic memory management (§3.3): multiple isolated tasks time-share one
// CMU Group through address translation, and a task's memory is grown on
// the fly when a traffic surge degrades its accuracy — the Fig. 12b
// scenario as a runnable program.
package main

import (
	"fmt"
	"log"

	"flymon/internal/controlplane"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func main() {
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 1, Buckets: 65536, BitWidth: 32, Mode: controlplane.Accurate,
	})

	// Two tasks with disjoint filters share the group's CMUs: each gets
	// its own power-of-two partition via address translation.
	west := packet.Filter{SrcPrefix: packet.Prefix{Value: 0, Bits: 1}}
	east := packet.Filter{SrcPrefix: packet.Prefix{Value: 0x80000000, Bits: 1}}

	taskA, err := ctrl.AddTask(controlplane.TaskSpec{
		Name: "west-flows", Filter: west, Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 2048, D: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	taskB, err := ctrl.AddTask(controlplane.TaskSpec{
		Name: "east-bytes", Filter: east, Key: packet.KeySrcIP,
		Attribute:  controlplane.AttrFrequency,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamPacketBytes},
		MemBuckets: 2048, D: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two isolated tasks share one CMU Group:\n")
	for _, t := range ctrl.Tasks() {
		fmt.Printf("  task %d %-12s %-12s %5d buckets/row\n", t.ID, t.Spec.Name, t.Algorithm, t.Buckets)
	}

	measure := func(tr *trace.Trace, label string) {
		_ = ctrl.ResetTaskCounters(taskA.ID)
		exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
		for i := range tr.Packets {
			ctrl.Process(&tr.Packets[i])
			if west.Matches(&tr.Packets[i]) {
				exact.AddPacket(&tr.Packets[i])
			}
		}
		est := make(map[packet.CanonicalKey]uint64, exact.Flows())
		for k := range exact.Counts() {
			v, err := ctrl.EstimateKey(taskA.ID, k)
			if err != nil {
				log.Fatal(err)
			}
			est[k] = uint64(v)
		}
		fmt.Printf("%-28s %6d west flows, task-A ARE %.3f\n",
			label, exact.Flows(), metrics.ARE(exact.Counts(), est))
	}

	normal := trace.Generate(trace.Config{Flows: 3000, Packets: 120_000, Seed: 21})
	measure(normal, "normal load:")

	// Surge: 10× the flows. The undersized task drowns in collisions.
	surge := trace.Generate(trace.Config{Flows: 30_000, Packets: 240_000, Seed: 22})
	measure(surge, "surge, 2K buckets:")

	// On-the-fly reallocation: grow task A to 16K buckets per row.
	if _, err := ctrl.ResizeTask(taskA.ID, 16384); err != nil {
		log.Fatal(err)
	}
	fmt.Println("→ resized task A to 16384 buckets/row (runtime rules only)")
	measure(surge, "surge, 16K buckets:")

	// Task B was untouched throughout.
	if _, err := ctrl.Task(taskB.ID); err != nil {
		log.Fatal(err)
	}
	free := ctrl.FreeBuckets()
	fmt.Printf("free buckets per CMU after reallocation: %v\n", free[0])
}
