package netwide

import (
	"net"
	"strings"
	"testing"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/faultnet"
	"flymon/internal/rpc"
	"flymon/internal/trace"
	"flymon/internal/tracing"
)

// findTree returns the newest assembled tree whose root operation has the
// given name and whose root detail contains want ("" matches any).
func findTree(trees []*tracing.Tree, op, want string) *tracing.Tree {
	for _, tr := range trees {
		if tr.Root == nil || tr.Root.Span.Name != op {
			continue
		}
		if want != "" && !strings.Contains(tr.Root.Span.Detail, want) {
			continue
		}
		return tr
	}
	return nil
}

// childrenNamed returns root's direct children with the given span name.
func childrenNamed(n *tracing.Node, name string) []*tracing.Node {
	var out []*tracing.Node
	for _, c := range n.Children {
		if c.Span.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// hasDescendant reports whether any node under n (n excluded) has the name.
func hasDescendant(n *tracing.Node, name string) bool {
	for _, c := range n.Children {
		if c.Span.Name == name || hasDescendant(c, name) {
			return true
		}
	}
	return false
}

// TestChaosTraceStragglerCriticalPath is the end-to-end tracing drill: a
// traced fleet (controller tracer + a span buffer per daemon) deploys an
// epoch task, loses switch 2 behind a faultnet partition during a
// rotation, heals, and runs a wait-policy epoch query that blocks on the
// straggler until a mid-wait catch-up. The assembled trees must be
// causally complete — controller root, per-switch fan-out spans,
// client-side RPC attempt spans, daemon-side dispatch and controlplane
// spans, merge spans — and the query's critical-path breakdown must name
// the slow switch.
func TestChaosTraceStragglerCriticalPath(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()

	var (
		ctrls []*controlplane.Controller
		addrs []string
	)
	for i := 0; i < 2; i++ {
		ctrl := controlplane.NewController(cfg)
		srv := rpc.NewServer(ctrl, nil)
		srv.SetTracer(tracing.New(0))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		ctrls = append(ctrls, ctrl)
		addrs = append(addrs, addr)
	}
	// Switch 2 sits behind a faultnet gate so the drill can partition it.
	ctrl2 := controlplane.NewController(cfg)
	gate := &faultnet.Gate{}
	srv2 := rpc.NewServer(ctrl2, nil)
	srv2.SetTracer(tracing.New(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2.Serve(faultnet.WrapListener(ln, faultnet.Plan{Seed: 7, Gate: gate}))
	t.Cleanup(func() { srv2.Close() })
	ctrls = append(ctrls, ctrl2)
	addrs = append(addrs, ln.Addr().String())

	var clients []*rpc.Client
	for i, addr := range addrs {
		c, err := rpc.DialOptions(addr, rpc.Options{
			DialTimeout:      500 * time.Millisecond,
			CallTimeout:      500 * time.Millisecond,
			MaxRetries:       -1,
			BreakerThreshold: 1000,
			Seed:             int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients = append(clients, c)
	}
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{
		AllowPartial: true,
		Tracer:       tracing.New(0),
	})
	t.Cleanup(fleet.Stop)

	if err := fleet.DeployEpoch(cmsSpec("ep")); err != nil {
		t.Fatal(err)
	}
	tr1 := trace.Generate(trace.Config{Flows: 200, Packets: 6_000, ZipfS: 1.1, Seed: 11})
	for i := range tr1.Packets {
		ctrls[i%3].Process(&tr1.Packets[i])
	}
	if ep, err := fleet.RotateEpoch("ep"); err != nil || ep != 1 {
		t.Fatalf("healthy rotation: epoch %d err %v", ep, err)
	}

	// Partition switch 2, flush the one request the parked handler still
	// delivers, rotate: the decree to switch 2 is lost and it falls behind.
	gate.Partition()
	if _, err := clients[2].ReadEpoch("ep", 1); err == nil {
		t.Fatal("probe through a partitioned gate must fail")
	}
	if ep, err := fleet.RotateEpoch("ep"); err != nil || ep != 2 {
		t.Fatalf("partitioned rotation: epoch %d err %v", ep, err)
	}
	gate.Heal()

	// Wait-policy query blocks on the straggler; catch it up mid-wait.
	type qres struct {
		report QueryReport
		err    error
	}
	done := make(chan qres, 1)
	go func() {
		_, report, err := fleet.QueryEpochRows("ep", 2, EpochQuery{Wait: 8 * time.Second})
		done <- qres{report, err}
	}()
	time.Sleep(150 * time.Millisecond)
	if _, err := clients[2].EpochRotate("ep", 2); err != nil {
		t.Fatalf("manual straggler catch-up: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("wait query after catch-up: %v", r.err)
	}
	if len(r.report.Contributed) != 3 || r.report.Partial() {
		t.Fatalf("caught-up report = %v", r.report)
	}

	trees, terrs := fleet.CollectTrace(0)
	if len(terrs) != 0 {
		t.Fatalf("CollectTrace errors = %v", terrs)
	}

	// Deploy tree: causally complete across all three layers on every
	// switch — controller root → switch fan-out → client RPC attempt →
	// daemon dispatch → controlplane mutation.
	dt := findTree(trees, "epoch_deploy", "")
	if dt == nil {
		t.Fatalf("no epoch_deploy tree among %d trees", len(trees))
	}
	if len(dt.Orphans) != 0 {
		t.Fatalf("epoch_deploy tree has %d orphan span(s): causally incomplete", len(dt.Orphans))
	}
	sws := childrenNamed(dt.Root, "switch")
	if len(sws) != 3 {
		t.Fatalf("epoch_deploy has %d switch spans, want 3", len(sws))
	}
	seen := map[int]bool{}
	for _, sw := range sws {
		seen[sw.Span.Switch] = true
		rpcs := childrenNamed(sw, "rpc:epoch_deploy")
		if len(rpcs) == 0 {
			t.Fatalf("switch %d deploy span has no rpc:epoch_deploy child", sw.Span.Switch)
		}
		if !hasDescendant(rpcs[0], "dispatch:epoch_deploy") {
			t.Fatalf("switch %d rpc span has no daemon-side dispatch span", sw.Span.Switch)
		}
		if !hasDescendant(rpcs[0], "controlplane:epoch_deploy") {
			t.Fatalf("switch %d rpc span has no controlplane mutation span", sw.Span.Switch)
		}
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("deploy switch spans cover %v, want 0..2", seen)
	}

	// Partitioned rotation tree: switch 2's decree failed and the trace
	// says so.
	rt := findTree(trees, "epoch_rotate", "to epoch 2")
	if rt == nil {
		t.Fatal("no epoch_rotate tree for the partitioned rotation")
	}
	var rotFailed bool
	for _, sw := range childrenNamed(rt.Root, "switch") {
		if sw.Span.Switch == 2 && sw.Span.Err != "" {
			rotFailed = true
		}
	}
	if !rotFailed {
		t.Fatal("partitioned rotation trace does not record switch 2's lost decree")
	}

	// Query tree: the straggler wait is a span under switch 2, the merge
	// span is tagged with the leaf it waited on, and the critical-path
	// breakdown names the slow switch.
	qt := findTree(trees, "epoch_query", "epoch=2")
	if qt == nil {
		t.Fatal("no epoch_query tree")
	}
	if len(qt.Orphans) != 0 {
		t.Fatalf("epoch_query tree has %d orphan span(s)", len(qt.Orphans))
	}
	qsws := childrenNamed(qt.Root, "switch")
	if len(qsws) != 3 {
		t.Fatalf("epoch_query has %d switch spans, want 3", len(qsws))
	}
	var waited bool
	for _, sw := range qsws {
		if sw.Span.Switch != 2 {
			continue
		}
		for _, c := range childrenNamed(sw, "straggler_wait") {
			if c.Span.Err == "" && strings.Contains(c.Span.Detail, "caught up") {
				waited = true
			}
		}
	}
	if !waited {
		t.Fatal("no successful straggler_wait span under switch 2")
	}
	merges := childrenNamed(qt.Root, "merge")
	if len(merges) != 1 {
		t.Fatalf("epoch_query has %d merge spans, want 1", len(merges))
	}
	if got := merges[0].Span.Switch; got != 2 {
		t.Fatalf("merge span waited on sw-%d, want the straggler sw-2", got)
	}
	if len(childrenNamed(merges[0], "merge:kernel")) == 0 {
		t.Fatal("merge span has no kernel children")
	}
	if bd := qt.Breakdown(); !strings.Contains(bd, "on sw-2") {
		t.Fatalf("critical path %q does not name the slow switch", bd)
	}

	// The assembled trees carry spans from four buffers; every daemon
	// contributed (each ran at least the deploy dispatch).
	for i, c := range clients {
		dump, err := c.TraceDump(0)
		if err != nil {
			t.Fatalf("trace_dump on %d: %v", i, err)
		}
		if len(dump.Spans) == 0 {
			t.Fatalf("daemon %d recorded no spans", i)
		}
		if dump.Dropped != 0 {
			t.Fatalf("daemon %d dropped %d spans in a short drill", i, dump.Dropped)
		}
	}
}
