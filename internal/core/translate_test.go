package core

import "testing"

// Edge-case coverage for address translation (§3.3): the two methods must
// agree on degenerate partitions, respect base offsets at the address
// extremes, and stay inside the partition even for the non-power-of-two
// ranges the planner never emits but nothing structurally forbids.

func TestTranslateZeroBucketsCollapsesToBase(t *testing.T) {
	mem := MemRange{Base: 77, Buckets: 0}
	for _, m := range []TranslationMethod{ShiftBased, TCAMBased} {
		for _, addr := range []uint32{0, 1, 0x8000_0000, ^uint32(0)} {
			if got := Translate(addr, mem, m); got != 77 {
				t.Errorf("%s translate addr %#x with 0 buckets: %d, want base 77", m, addr, got)
			}
		}
	}
}

func TestTranslateSingleBucket(t *testing.T) {
	// A one-bucket partition has a single legal index: its base. Shift-based
	// must shift the full 32 bits away (the shift == 32 boundary), not wrap.
	mem := MemRange{Base: 512, Buckets: 1}
	for _, m := range []TranslationMethod{ShiftBased, TCAMBased} {
		for _, addr := range []uint32{0, 0xDEADBEEF, ^uint32(0)} {
			if got := Translate(addr, mem, m); got != 512 {
				t.Errorf("%s translate addr %#x with 1 bucket: %d, want 512", m, addr, got)
			}
		}
	}
}

func TestTranslateAddressExtremesRespectBase(t *testing.T) {
	// Address 0 maps to the partition's first bucket and address ^0 to its
	// last, for both methods — out-of-partition indices at the extremes are
	// exactly the off-by-one bugs translation refactors introduce.
	mem := MemRange{Base: 3072, Buckets: 1024}
	for _, m := range []TranslationMethod{ShiftBased, TCAMBased} {
		if got := Translate(0, mem, m); got != 3072 {
			t.Errorf("%s translate addr 0: %d, want first bucket 3072", m, got)
		}
		if got := Translate(^uint32(0), mem, m); got != 3072+1023 {
			t.Errorf("%s translate addr ^0: %d, want last bucket %d", m, got, 3072+1023)
		}
	}
}

func TestTranslateShiftVsTCAMBitSelection(t *testing.T) {
	// Shift-based reads the high bits; TCAM-based the low bits. An address
	// with disjoint high/low patterns separates the two.
	mem := MemRange{Base: 1 << 12, Buckets: 256}
	addr := uint32(0xAB_0000_CD)
	if got := Translate(addr, mem, ShiftBased); got != 1<<12+0xAB {
		t.Errorf("shift-based: %#x, want base+0xAB", got)
	}
	if got := Translate(addr, mem, TCAMBased); got != 1<<12+0xCD {
		t.Errorf("TCAM-based: %#x, want base+0xCD", got)
	}
}

func TestTranslateNonPowerOfTwoStaysInPartition(t *testing.T) {
	// Buckets is a power of two by planner invariant, but Translate must
	// degrade safely (stay in [Base, Base+Buckets)) if handed a
	// non-power-of-two range: shift-based keys off the lowest set bit,
	// TCAM-based masks with n-1.
	for _, buckets := range []int{3, 48, 1000} {
		mem := MemRange{Base: 2048, Buckets: buckets}
		for _, m := range []TranslationMethod{ShiftBased, TCAMBased} {
			for i := 0; i < 4096; i++ {
				addr := uint32(i) * 2654435761
				got := Translate(addr, mem, m)
				if got < 2048 || got >= uint32(2048+buckets) {
					t.Fatalf("%s translate addr %#x escaped partition [2048,%d): %d",
						m, addr, 2048+buckets, got)
				}
			}
		}
	}
}

func TestTranslateFullRegisterRange(t *testing.T) {
	// A partition covering the whole register (Base 0) must reach both
	// boundary buckets.
	mem := MemRange{Base: 0, Buckets: 65536}
	for _, m := range []TranslationMethod{ShiftBased, TCAMBased} {
		if got := Translate(^uint32(0), mem, m); got != 65535 {
			t.Errorf("%s translate ^0 over full register: %d, want 65535", m, got)
		}
		if got := Translate(0, mem, m); got != 0 {
			t.Errorf("%s translate 0 over full register: %d, want 0", m, got)
		}
	}
}
