package dataplane

import "fmt"

// StatefulOp identifies one of the register actions a SALU can preload.
// FlyMon's reduced operation set (§3.1.2, Appendix A) needs only three,
// leaving one of the four hardware slots free for extensions (e.g. an XOR
// op for Odd Sketch, §6).
type StatefulOp uint8

const (
	// OpNone performs no update and returns 0.
	OpNone StatefulOp = iota
	// OpCondAdd adds p1 to the bucket if bucket < p2, returning the updated
	// value, else returns 0 (Appendix A, Operation 1). With p2 = MaxUint32
	// it degenerates to the unconditional ADD that CMS/MRAC need.
	OpCondAdd
	// OpMax sets the bucket to p1 if bucket < p1, returning the updated
	// value, else returns 0 (Appendix A, Operation 2).
	OpMax
	// OpAndOr performs bucket &= p1 when p2 == 0, else bucket |= p1,
	// returning the updated bucket (Appendix A, Operation 3).
	OpAndOr
	// OpXor toggles bucket bits: bucket ^= p1, returning the updated
	// bucket. This is the paper's reserved-slot extension (§6): with the
	// fourth SALU action slot, FlyMon can host Odd Sketch for traffic-set
	// similarity.
	OpXor
)

// String implements fmt.Stringer.
func (op StatefulOp) String() string {
	switch op {
	case OpNone:
		return "None"
	case OpCondAdd:
		return "Cond-ADD"
	case OpMax:
		return "MAX"
	case OpAndOr:
		return "AND-OR"
	case OpXor:
		return "XOR"
	default:
		return fmt.Sprintf("StatefulOp(%d)", uint8(op))
	}
}

// ReducedOperationSet is the set of stateful operations FlyMon preloads on
// every CMU register (§3.1.2); the fourth SALU slot stays free.
var ReducedOperationSet = []StatefulOp{OpCondAdd, OpMax, OpAndOr}

// ExtendedOperationSet adds the reserved-slot XOR extension (§6),
// exhausting the SALU's four action slots.
var ExtendedOperationSet = []StatefulOp{OpCondAdd, OpMax, OpAndOr, OpXor}

// Register models a SALU bound to a fixed-size stateful memory. The bucket
// count and bit width are fixed at compile time (they cannot change at
// runtime — the constraint that motivates FlyMon's address translation);
// the executed action is selected per packet.
//
// The register enforces the single-access-per-packet constraint indirectly:
// Execute touches exactly one bucket, and the CMU layer never issues two
// Executes for one packet.
type Register struct {
	buckets  []uint32
	bitWidth int
	mask     uint32
	accesses uint64
}

// NewRegister allocates a register with the given bucket count (rounded up
// to a power of two, as hardware memories are) and bucket bit width (at
// most 32).
func NewRegister(buckets, bitWidth int) *Register {
	if bitWidth <= 0 || bitWidth > 32 {
		panic(fmt.Sprintf("dataplane: register bit width %d out of range (0,32]", bitWidth))
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	var mask uint32 = ^uint32(0)
	if bitWidth < 32 {
		mask = 1<<uint(bitWidth) - 1
	}
	return &Register{buckets: make([]uint32, n), bitWidth: bitWidth, mask: mask}
}

// Size returns the bucket count.
func (r *Register) Size() int { return len(r.buckets) }

// BitWidth returns the configured bucket width in bits.
func (r *Register) BitWidth() int { return r.bitWidth }

// MemoryBytes returns the stateful memory footprint (bit-packed).
func (r *Register) MemoryBytes() int { return len(r.buckets) * r.bitWidth / 8 }

// SRAMBlocks returns the SRAM blocks this register occupies.
func (r *Register) SRAMBlocks() int { return SRAMBlocksFor(len(r.buckets), r.bitWidth) }

// Accesses returns the number of Execute calls served (test/diagnostic).
func (r *Register) Accesses() uint64 { return r.accesses }

// Execute performs one stateful operation on bucket index with parameters
// p1, p2, returning the operation's result. The index is wrapped into the
// bucket range; values saturate at the bucket width.
func (r *Register) Execute(op StatefulOp, index uint32, p1, p2 uint32) uint32 {
	r.accesses++
	i := index & uint32(len(r.buckets)-1)
	cur := r.buckets[i]
	switch op {
	case OpCondAdd:
		if cur < (p2 & r.mask) {
			next := cur + (p1 & r.mask)
			if next > r.mask || next < cur {
				next = r.mask
			}
			r.buckets[i] = next
			return next
		}
		return 0
	case OpMax:
		v := p1 & r.mask
		if cur < v {
			r.buckets[i] = v
			return v
		}
		return 0
	case OpAndOr:
		if p2 == 0 {
			cur &= p1 & r.mask
		} else {
			cur |= p1 & r.mask
		}
		r.buckets[i] = cur
		return cur
	case OpXor:
		cur ^= p1 & r.mask
		r.buckets[i] = cur
		return cur
	case OpNone:
		return 0
	default:
		panic(fmt.Sprintf("dataplane: unknown stateful op %d", op))
	}
}

// Read returns bucket i without counting a data-plane access (control-plane
// register readout).
func (r *Register) Read(i uint32) uint32 {
	return r.buckets[i&uint32(len(r.buckets)-1)]
}

// ReadRange copies buckets [lo, lo+n) into a fresh slice (control-plane
// readout of one task's partition).
func (r *Register) ReadRange(lo, n int) []uint32 {
	out := make([]uint32, n)
	copy(out, r.buckets[lo:lo+n])
	return out
}

// ClearRange zeroes buckets [lo, lo+n) — used when a partition is recycled
// for a new task.
func (r *Register) ClearRange(lo, n int) {
	for i := lo; i < lo+n; i++ {
		r.buckets[i] = 0
	}
}

// Reset zeroes the whole register.
func (r *Register) Reset() { clear(r.buckets) }
