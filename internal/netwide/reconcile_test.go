package netwide

import (
	"errors"
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
)

// TestReconcileRedeploysWipedDaemonAtPinnedIDs is the core self-healing
// property: a daemon that crashed and restarted EMPTY gets its tasks back
// at exactly the fleet's IDs — including across gaps left by removals —
// and the next plain Deploy stays aligned on every switch.
func TestReconcileRedeploysWipedDaemonAtPinnedIDs(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients, srvs, addrs := resilientDaemons(t, 2, cfg)
	tele := &telemetry.FleetStats{}
	journal := telemetry.NewJournal(64)
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{
		AllowPartial: true,
		Telemetry:    tele,
		Journal:      journal,
	})

	// Deploy a, b, c (IDs 1, 2, 3), then remove b — the fleet's desired
	// state now has an ID gap: {a:1, c:3}.
	for _, name := range []string{"a", "b", "c"} {
		if err := fleet.Deploy(cmsSpec(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.Remove("b"); err != nil {
		t.Fatal(err)
	}

	// Daemon 1 crashes and restarts from scratch: fresh controller, same
	// address, zero tasks.
	srvs[1].Close()
	ctrls[1] = controlplane.NewController(cfg)
	srv := rpc.NewServer(ctrls[1], nil)
	if _, err := srv.Listen(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	res := fleet.Reconcile()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Redeployed != 2 {
		t.Fatalf("redeployed = %d, want 2 (a and c)", res.Redeployed)
	}
	tasks := ctrls[1].Tasks()
	if len(tasks) != 2 {
		t.Fatalf("restarted daemon has %d tasks, want 2", len(tasks))
	}
	byID := make(map[int]string)
	for _, task := range tasks {
		byID[task.ID] = task.Spec.Name
	}
	if byID[1] != "a" || byID[3] != "c" {
		t.Fatalf("restarted daemon tasks = %v, want {1:a, 3:c}", byID)
	}

	// A second pass is idempotent: nothing left to repair.
	res = fleet.Reconcile()
	if res.Redeployed != 0 || res.Err() != nil {
		t.Fatalf("second pass not clean: %+v", res)
	}

	// The restarted daemon's ID sequence realigned: the next fleet-wide
	// Deploy gets ID 4 everywhere (no divergence error).
	if err := fleet.Deploy(cmsSpec("d")); err != nil {
		t.Fatalf("deploy after reconcile: %v", err)
	}
	for i, c := range ctrls {
		found := false
		for _, task := range c.Tasks() {
			if task.Spec.Name == "d" && task.ID == 4 {
				found = true
			}
		}
		if !found {
			t.Fatalf("daemon %d: task d not at ID 4: %v", i, c.Tasks())
		}
	}

	if got := tele.Redeploys.Load(); got != 2 {
		t.Fatalf("telemetry redeploys = %d, want 2", got)
	}
	redeploys := 0
	for _, e := range journal.Events() {
		if e.Kind == "redeploy" && e.OK {
			redeploys++
		}
	}
	if redeploys != 2 {
		t.Fatalf("journal redeploy events = %d, want 2", redeploys)
	}
}

// TestReconcileCompletesTombstonedRemoval: a Remove that partially failed
// leaves a tombstone; the reconciler finishes the removal on the straggler
// and does NOT re-deploy the task onto the switches that already dropped
// it. Once every switch is confirmed clean the handle is finalized away.
func TestReconcileCompletesTombstonedRemoval(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients, srvs, addrs := resilientDaemons(t, 2, cfg)
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{AllowPartial: true})
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}

	// Daemon 1 dies mid-remove: daemon 0 drops the task, daemon 1 strands it.
	srvs[1].Close()
	var pf *PartialFailureError
	if err := fleet.Remove("freq"); !errors.As(err, &pf) {
		t.Fatalf("remove error = %v, want partial failure", err)
	}

	// While daemon 1 is still down, a reconcile pass must neither finalize
	// the tombstone nor resurrect the task on daemon 0.
	res := fleet.Reconcile()
	if res.Finalized != 0 || res.Redeployed != 0 {
		t.Fatalf("pass with a dead switch: %+v", res)
	}
	if len(ctrls[0].Tasks()) != 0 {
		t.Fatal("reconcile resurrected a tombstoned task on daemon 0")
	}

	// Daemon 1 returns (same state: the stranded task is still there).
	srv := rpc.NewServer(ctrls[1], nil)
	if _, err := srv.Listen(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	res = fleet.Reconcile()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.Finalized != 1 {
		t.Fatalf("reconcile after rejoin: %+v, want removed=1 finalized=1", res)
	}
	if len(ctrls[1].Tasks()) != 0 {
		t.Fatal("stranded task not removed")
	}
	// The handle is gone: the name is free again.
	if err := fleet.Remove("freq"); err == nil {
		t.Fatal("remove after finalization must report no task")
	}
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatalf("redeploy after finalization: %v", err)
	}
}
