package mmtrace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

func writeTraceFile(t *testing.T, ps []packet.Packet) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if err := w.WritePacket(&ps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.fmt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

func genPackets(n int) []packet.Packet {
	tr := trace.Generate(trace.Config{Flows: 16, Packets: n, Seed: 7})
	return tr.Packets
}

func TestOpenMapsAndDecodes(t *testing.T) {
	ps := genPackets(1000)
	path, _ := writeTraceFile(t, ps)
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if runtime.GOOS == "linux" && !tr.Mapped() {
		t.Fatal("Open on linux should mmap")
	}
	if tr.Frames() != len(ps) {
		t.Fatalf("frames = %d, want %d", tr.Frames(), len(ps))
	}
	if tr.Bytes() != len(ps)*trace.RecordSize {
		t.Fatalf("bytes = %d", tr.Bytes())
	}
	// Spot-check lazy views and full decodes across the file.
	for _, i := range []int{0, 1, len(ps) / 2, len(ps) - 1} {
		v := tr.At(i)
		if v.SrcIP() != ps[i].SrcIP || v.TimestampNs() != ps[i].TimestampNs {
			t.Fatalf("frame %d: lazy fields differ", i)
		}
		var p packet.Packet
		v.Decode(&p)
		if p != ps[i] {
			t.Fatalf("frame %d: decode differs", i)
		}
	}
	// Batch paging covers the whole trace in order.
	buf := make([]packet.Packet, 130)
	got := 0
	for off := 0; ; {
		n, err := tr.DecodeBatch(off, buf)
		for i := 0; i < n; i++ {
			if buf[i] != ps[off+i] {
				t.Fatalf("frame %d differs in batch decode", off+i)
			}
		}
		off += n
		got += n
		if err == io.EOF || n < len(buf) {
			break
		}
	}
	if got != len(ps) {
		t.Fatalf("batch decode covered %d frames, want %d", got, len(ps))
	}
}

func TestOpenReaderAtFallbackMatchesMmap(t *testing.T) {
	ps := genPackets(257)
	path, encoded := writeTraceFile(t, ps)
	mapped, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	fb, err := OpenReaderAt(bytes.NewReader(encoded), int64(len(encoded)))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if fb.Mapped() {
		t.Fatal("ReaderAt path must not report mapped")
	}
	if fb.Frames() != mapped.Frames() {
		t.Fatalf("frame counts differ: %d vs %d", fb.Frames(), mapped.Frames())
	}
	var a, b packet.Packet
	for i := 0; i < fb.Frames(); i++ {
		mapped.At(i).Decode(&a)
		fb.At(i).Decode(&b)
		if a != b {
			t.Fatalf("frame %d differs between mmap and fallback", i)
		}
	}
}

func TestOpenTruncated(t *testing.T) {
	ps := genPackets(10)
	path, encoded := writeTraceFile(t, ps)
	if err := os.WriteFile(path, encoded[:len(encoded)-11], 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := Open(path)
	if tr == nil {
		t.Fatalf("truncated file must still open, got %v", err)
	}
	defer tr.Close()
	var te *trace.TruncatedError
	if !errors.As(err, &te) || te.Record != 9 {
		t.Fatalf("open error = %v, want TruncatedError{Record: 9}", err)
	}
	if !errors.Is(tr.Err(), io.ErrUnexpectedEOF) {
		t.Fatal("Err() must match io.ErrUnexpectedEOF")
	}
	if tr.Frames() != 9 {
		t.Fatalf("frames = %d, want the 9 intact records", tr.Frames())
	}
	// The intact prefix still decodes, and the stream end reports the
	// truncation.
	buf := make([]packet.Packet, 16)
	n, derr := tr.DecodeBatch(0, buf)
	if n != 9 {
		t.Fatalf("decoded %d frames, want 9", n)
	}
	if !errors.As(derr, &te) || te.Record != 9 {
		t.Fatalf("DecodeBatch end = %v, want the truncation", derr)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.fmt")
	if err := os.WriteFile(path, []byte("this is not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if tr, err := Open(path); err == nil || tr != nil {
		t.Fatalf("bad magic accepted: %v %v", tr, err)
	}
	if _, err := NewFromBytes(nil); !errors.Is(err, trace.ErrBadMagic) {
		t.Fatalf("nil bytes = %v, want ErrBadMagic", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	path, _ := writeTraceFile(t, nil)
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Frames() != 0 {
		t.Fatalf("frames = %d", tr.Frames())
	}
	if n, err := tr.DecodeBatch(0, make([]packet.Packet, 4)); n != 0 || err != io.EOF {
		t.Fatalf("empty trace DecodeBatch = (%d, %v), want (0, EOF)", n, err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	path, _ := writeTraceFile(t, genPackets(5))
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
