// Network-wide measurement: one task spec deployed across a fleet of
// FlyMon switches; the central controller merges per-switch register
// readouts to answer queries about the whole network — heavy hitters whose
// traffic is spread over several ingresses, fleet-wide flow cardinality,
// and a DDoS attack no single switch sees enough of (§3.4's SDM use case).
package main

import (
	"fmt"
	"log"

	"flymon/internal/controlplane"
	"flymon/internal/netwide"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func main() {
	fleet := netwide.NewFleet(4, controlplane.Config{
		Groups: 3, Buckets: 65536, BitWidth: 32,
	})
	fmt.Printf("fleet: %d switches, identical configurations\n", fleet.Size())

	// Deploy three network-wide tasks everywhere with one call each.
	for _, spec := range []controlplane.TaskSpec{
		{Name: "hh", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
			Threshold: 2048, MemBuckets: 16384, D: 3},
		{Name: "card", Attribute: controlplane.AttrDistinct,
			Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
			MemBuckets: 4096},
		{Name: "ddos", Key: packet.KeyDstIP, Attribute: controlplane.AttrDistinct,
			Param:     controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeySrcIP},
			Threshold: 512, MemBuckets: 16384, D: 3},
	} {
		if err := fleet.Deploy(spec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployed %q fleet-wide\n", spec.Name)
	}

	// Traffic enters at four ingresses; a DDoS attack is spread so thinly
	// that no single switch sees enough distinct sources.
	tr := trace.Generate(trace.Config{Flows: 8000, Packets: 400_000, ZipfS: 1.3, Seed: 90})
	victim := packet.IPv4(100, 64, 9, 9)
	tr.InjectDDoS(victim, 2048, 1, 91)
	for i := range tr.Packets {
		fleet.Process(i%fleet.Size(), &tr.Packets[i])
	}

	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	card := sketch.NewExactCardinality(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
		card.AddPacket(&tr.Packets[i])
	}

	// Fleet-wide heavy hitters: each switch saw only ~1/4 of every flow.
	cands := make([]packet.CanonicalKey, 0, exact.Flows())
	for k := range exact.Counts() {
		cands = append(cands, k)
	}
	truth := exact.HeavyHitters(2048)
	reported, err := fleet.HeavyHitters("hh", cands, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heavy hitters ≥2048 pkts: truth %d, network-wide reported %d\n",
		len(truth), len(reported))

	got, err := fleet.Cardinality("card")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet-wide cardinality: est %.0f, truth %d\n", got, card.Cardinality())

	ddos, err := fleet.Reported("ddos", cands2(tr))
	if err != nil {
		log.Fatal(err)
	}
	vk := packet.KeyDstIP.Extract(&packet.Packet{DstIP: victim})
	fmt.Printf("DDoS victim %s reported network-wide: %v (attack split 4 ways: ~512 sources/switch)\n",
		packet.FormatIPv4(victim), ddos[vk])
}

// cands2 extracts the distinct DstIP keys of a trace.
func cands2(tr *trace.Trace) []packet.CanonicalKey {
	seen := map[packet.CanonicalKey]bool{}
	out := make([]packet.CanonicalKey, 0)
	for i := range tr.Packets {
		k := packet.KeyDstIP.Extract(&tr.Packets[i])
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
