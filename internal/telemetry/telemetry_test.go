package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStripedFold(t *testing.T) {
	var c Counter
	// Writes land on whatever stripe the worker owns (mod CounterStripes);
	// the fold must see every stripe, including ones past the modulus.
	for stripe := uint32(0); stripe < 3*CounterStripes; stripe++ {
		c.Add(stripe, uint64(stripe))
	}
	var want uint64
	for s := uint32(0); s < 3*CounterStripes; s++ {
		want += uint64(s)
	}
	if got := c.Load(); got != want {
		t.Fatalf("Load() = %d, want %d", got, want)
	}
	c.Inc(7)
	if got := c.Load(); got != want+1 {
		t.Fatalf("Load() after Inc = %d, want %d", got, want+1)
	}
}

func TestCounterConcurrentExact(t *testing.T) {
	var c Counter
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stripe uint32) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(stripe)
			}
		}(uint32(w))
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("Load() = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{1 * time.Nanosecond, 0}, // 2^0 upper bound
		{2 * time.Nanosecond, 1}, // exactly a power of two lands on its own bucket
		{3 * time.Nanosecond, 2}, // ceil log2
		{1024 * time.Nanosecond, 10},
		{1025 * time.Nanosecond, 11},
		{time.Hour, HistogramBuckets - 1}, // clamped to the top bucket
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", snap.Count, len(cases))
	}
	for _, c := range cases {
		if snap.Buckets[c.bucket] == 0 {
			t.Errorf("observe(%v): bucket %d empty, want a sample (upper bound %d ns)",
				c.d, c.bucket, BucketUpperNs(c.bucket))
		}
	}
	// A bucket's upper bound must actually bound its samples.
	if got := BucketUpperNs(10); got != 1024 {
		t.Errorf("BucketUpperNs(10) = %d, want 1024", got)
	}
}

func TestJournalBoundedWrapAndOrder(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Record(Event{Kind: "deploy", Task: i})
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (bounded ring)", j.Len())
	}
	if j.Total() != 6 {
		t.Fatalf("Total = %d, want 6", j.Total())
	}
	if j.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", j.Dropped())
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(i + 2); e.Seq != want {
			t.Errorf("event %d has seq %d, want %d (oldest-first, gap-free)", i, e.Seq, want)
		}
		if e.Task != i+2 {
			t.Errorf("event %d carries task %d, want %d", i, e.Task, i+2)
		}
		if i > 0 && e.AtNs < evs[i-1].AtNs {
			t.Errorf("event %d timestamp %d precedes predecessor %d (monotonic order broken)", i, e.AtNs, evs[i-1].AtNs)
		}
	}
}

func TestJournalPartialFill(t *testing.T) {
	j := NewJournal(8)
	j.Record(Event{Kind: "deploy"})
	j.Record(Event{Kind: "remove"})
	evs := j.Events()
	if len(evs) != 2 || evs[0].Kind != "deploy" || evs[1].Kind != "remove" {
		t.Fatalf("Events() = %+v, want the two records in order", evs)
	}
	if j.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 before the ring is full", j.Dropped())
	}
}

func TestRPCStatsSnapshotSorted(t *testing.T) {
	var s RPCStats
	s.Endpoint("stats").Requests.Add(3)
	s.Endpoint("add_task").Requests.Add(1)
	s.Endpoint("add_task").Failures.Add(1)
	s.Breaker.Open.Add(2)
	r := s.Snapshot()
	if len(r.Endpoints) != 2 || r.Endpoints[0].Method != "add_task" || r.Endpoints[1].Method != "stats" {
		t.Fatalf("Endpoints = %+v, want add_task then stats (sorted)", r.Endpoints)
	}
	if r.Endpoints[0].Failures != 1 || r.Endpoints[1].Requests != 3 || r.BreakerOpen != 2 {
		t.Fatalf("counter values lost in snapshot: %+v", r)
	}
}

func TestRegistryDropTask(t *testing.T) {
	r := NewRegistry()
	r.Rule(RuleKey{Group: 0, CMU: 0, Task: 1}, RuleMeta{Op: "CondADD"})
	r.Rule(RuleKey{Group: 0, CMU: 1, Task: 1}, RuleMeta{Op: "CondADD"})
	r.Rule(RuleKey{Group: 1, CMU: 0, Task: 2}, RuleMeta{Op: "MAX"})
	r.DropTask(1)
	dp := r.FoldDataPlane(LiveSample{})
	if len(dp.Rules) != 1 || dp.Rules[0].Task != 2 {
		t.Fatalf("after DropTask(1): rules = %+v, want only task 2", dp.Rules)
	}
}

func TestWriteMetricsReport(t *testing.T) {
	r := NewRegistry()
	rc := r.Rule(RuleKey{Group: 2, CMU: 1, Task: 7}, RuleMeta{Op: "CondADD"})
	rc.Add(0, 41)
	rc.Settle(1)
	r.SetVersion(3)
	r.MutationLatency.Observe(800 * time.Nanosecond)
	r.Journal.Record(Event{Kind: "deploy", Task: 7, OK: true})
	r.RPCServer.Endpoint("stats").Requests.Add(5)
	rep := r.Report()
	rep.DataPlane.Packets = 42
	rep.DataPlane.Registers = []RegisterGauge{{Group: 0, CMU: 0, Buckets: 64, Occupied: 3, Clamps: 2, Accesses: 9}}

	var b strings.Builder
	WriteMetricsReport(&b, rep)
	out := b.String()
	for _, want := range []string{
		"flymon_packets_total 42",
		`flymon_rule_hits_total{group="2",cmu="1",task="7",op="CondADD"} 42`,
		`flymon_register_occupied_buckets{group="0",cmu="0"} 3`,
		`flymon_register_clamps_total{group="0",cmu="0"} 2`,
		"flymon_snapshot_version 3",
		"flymon_reconfig_events_total 1",
		"flymon_reconfig_latency_seconds_count 1",
		`flymon_rpc_requests_total{side="server",method="stats"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Prometheus text format: each family declared exactly once.
	if n := strings.Count(out, "# TYPE flymon_rpc_requests_total"); n != 1 {
		t.Errorf("flymon_rpc_requests_total declared %d times, want exactly 1", n)
	}
}
