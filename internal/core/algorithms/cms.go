package algorithms

import (
	"fmt"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

// CMSTask is a FlyMon-CMS instance: d CMUs of one group running Cond-ADD
// with p2 = +∞ (the unconditional ADD degeneration, §4 Heavy Hitter), all
// indexing sub-parts of one shared compressed key.
type CMSTask struct {
	Group  *core.Group
	TaskID int
	Unit   int
	Base   int // first CMU index (row i lives on CMU Base+i)
	D      int
	Rows   []core.MemRange
	Method core.TranslationMethod
}

// InstallCMS installs a FlyMon-CMS task on group g: key spec, parameter
// source (Const(1) for packet counts, PacketSize() for byte counts), d
// rows, and an optional placement (nil = whole registers). filter narrows
// the task's traffic. The optional trailing argument is the first CMU
// index (row i → CMU at+i); it defaults to 0.
func InstallCMS(g *core.Group, taskID int, filter packet.Filter, key packet.KeySpec,
	param core.ParamSource, d int, rows []core.MemRange, at ...int) (*CMSTask, error) {
	base := baseCMU(at)
	if d < 1 || d > g.CMUs() {
		return nil, fmt.Errorf("algorithms: CMS depth %d exceeds group's %d CMUs", d, g.CMUs())
	}
	rows, err := checkRows(g, rows, base, d)
	if err != nil {
		return nil, err
	}
	unit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	t := &CMSTask{Group: g, TaskID: taskID, Unit: unit, Base: base, D: d, Rows: rows, Method: core.TCAMBased}
	for i := 0; i < d; i++ {
		rule := &core.Rule{
			TaskID:      taskID,
			Filter:      filter,
			Key:         rowSelector(unit, base+i),
			P1:          param,
			P2:          core.MaxValue(),
			Mem:         rows[i],
			Translation: t.Method,
			Op:          dataplane.OpCondAdd,
		}
		if err := g.CMU(base + i).InstallRule(rule); err != nil {
			t.Uninstall()
			return nil, err
		}
	}
	return t, nil
}

// EstimateKey returns the count-min estimate for canonical key k.
func (t *CMSTask) EstimateKey(k packet.CanonicalKey) uint32 {
	min := ^uint32(0)
	for i := 0; i < t.D; i++ {
		idx := rowIndex(t.Group, t.Unit, t.Base+i, k, t.Rows[i], t.Method)
		if c := t.Group.CMU(t.Base + i).Register().Read(idx); c < min {
			min = c
		}
	}
	return min
}

// HeavyHitters returns the candidates whose estimate meets the threshold.
func (t *CMSTask) HeavyHitters(candidates []packet.CanonicalKey, threshold uint32) map[packet.CanonicalKey]bool {
	out := make(map[packet.CanonicalKey]bool)
	for _, k := range candidates {
		if t.EstimateKey(k) >= threshold {
			out[k] = true
		}
	}
	return out
}

// MemoryBytes returns the task's register memory footprint.
func (t *CMSTask) MemoryBytes() int {
	total := 0
	for i, r := range t.Rows {
		total += r.Buckets * t.Group.CMU(t.Base+i).Register().BitWidth() / 8
	}
	return total
}

// Uninstall removes the task's rules and clears its partitions.
func (t *CMSTask) Uninstall() {
	for i := 0; i < t.Group.CMUs(); i++ {
		t.Group.CMU(i).RemoveRule(t.TaskID)
	}
}

// MRACTask is FlyMon-MRAC: data-plane-identical to a d=1 FlyMon-CMS; only
// the control-plane analysis differs (Appendix D).
type MRACTask struct {
	*CMSTask
}

// InstallMRAC installs a FlyMon-MRAC task (one CMU) on group g. The
// optional trailing argument selects the CMU.
func InstallMRAC(g *core.Group, taskID int, filter packet.Filter, key packet.KeySpec,
	rows []core.MemRange, at ...int) (*MRACTask, error) {
	t, err := InstallCMS(g, taskID, filter, key, core.Const(1), 1, rows, at...)
	if err != nil {
		return nil, err
	}
	return &MRACTask{CMSTask: t}, nil
}

// Counters reads the task's counter partition for EM analysis.
func (t *MRACTask) Counters() ([]uint32, error) {
	return t.Group.CMU(t.Base).ReadTask(t.TaskID)
}

// RowIndexFor returns the register index row i uses for canonical key k —
// the readout primitive network-wide merging builds on: two switches
// deployed from identical controller configurations compute identical
// indices, so their register readouts combine element-wise.
func (t *CMSTask) RowIndexFor(i int, k packet.CanonicalKey) uint32 {
	return rowIndex(t.Group, t.Unit, t.Base+i, k, t.Rows[i], t.Method)
}
