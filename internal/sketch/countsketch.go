package sketch

import (
	"sort"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// CountSketch (Charikar et al.) is the signed-counter sketch UnivMon builds
// on: d rows of w counters; each key gets a ±1 sign per row and the
// estimate is the median of sign-corrected counters, an unbiased estimator
// (unlike CMS's overestimate).
type CountSketch struct {
	spec packet.KeySpec
	d, w int
	rows [][]int64
	hash *hashing.Family // index hashes; sign derived from a disjoint bit
}

// NewCountSketch builds a d×w Count Sketch keyed by spec.
func NewCountSketch(spec packet.KeySpec, d, w int) *CountSketch {
	w = ceilPow2(w)
	s := &CountSketch{spec: spec, d: d, w: w, hash: hashing.NewFamily(d, spec)}
	s.rows = make([][]int64, d)
	backing := make([]int64, d*w)
	for j := range s.rows {
		s.rows[j], backing = backing[:w], backing[w:]
	}
	return s
}

// Add adds v (signed) to p's flow.
func (s *CountSketch) Add(p *packet.Packet, v int64) {
	for j := 0; j < s.d; j++ {
		h := s.hash.Hash(j, p)
		idx := h & uint32(s.w-1)
		s.rows[j][idx] += sign(h) * v
	}
}

// AddKey adds v for a canonical key.
func (s *CountSketch) AddKey(k packet.CanonicalKey, v int64) {
	for j := 0; j < s.d; j++ {
		h := s.hash.HashBytes(j, k[:])
		idx := h & uint32(s.w-1)
		s.rows[j][idx] += sign(h) * v
	}
}

// sign derives ±1 from the hash's top bit, which the w-mask never touches.
func sign(h uint32) int64 {
	if h&0x8000_0000 != 0 {
		return 1
	}
	return -1
}

// Estimate returns the median sign-corrected estimate for p's flow,
// clamped at zero.
func (s *CountSketch) Estimate(p *packet.Packet) int64 {
	k := s.spec.Extract(p)
	return s.EstimateKey(k)
}

// EstimateKey is Estimate for a canonical key.
func (s *CountSketch) EstimateKey(k packet.CanonicalKey) int64 {
	vals := make([]int64, s.d)
	for j := 0; j < s.d; j++ {
		h := s.hash.HashBytes(j, k[:])
		idx := h & uint32(s.w-1)
		vals[j] = sign(h) * s.rows[j][idx]
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	var med int64
	if s.d%2 == 1 {
		med = vals[s.d/2]
	} else {
		med = (vals[s.d/2-1] + vals[s.d/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return med
}

// MemoryBytes returns the counter memory footprint (32-bit hardware
// counters are assumed, matching the evaluation's accounting).
func (s *CountSketch) MemoryBytes() int { return s.d * s.w * 4 }

// Reset zeroes all counters.
func (s *CountSketch) Reset() {
	for _, row := range s.rows {
		clear(row)
	}
}
