package mmtrace

import (
	"runtime"
	"sync/atomic"
)

// Span is one unit of replay work: frames [Lo, Hi) of trace Src on replay
// pass Pass. Producers enqueue spans instead of packets, so the ring moves
// 24-byte descriptors while the frame bytes stay put in the mapped file —
// the zero-copy half of the design. Consumers decode the span's frames
// into their own scratch right before processing, when the bytes are about
// to be hot anyway.
type Span struct {
	Src  int32 // index into the replayer's trace set
	Pass int32 // replay pass (loop mode re-enqueues the trace)
	Lo   int64 // first frame (inclusive)
	Hi   int64 // last frame (exclusive)
}

// slot pads each span to a cache line so neighboring slots never
// false-share: the slot's sequence number is its publish/release handshake.
type slot struct {
	seq  atomic.Uint64
	span Span
	_    [64 - 8 - 24]byte
}

// Ring is a bounded multi-producer/multi-consumer queue of spans in the
// style of Vyukov's MPMC array queue, extended with batch claim/publish:
// a producer claims n slots with one fetch-add on head, a consumer claims
// up to the published backlog with one CAS on tail, and per-slot sequence
// numbers order the handoff without any lock. head and tail live on their
// own cache lines so producers and consumers never ping-pong a line.
//
// The protocol per slot at position pos (capacity C):
//
//	seq == pos      free — the producer that claimed pos may write it
//	seq == pos+1    published — the consumer that claimed pos may read it
//	seq == pos+C    released — free again for the producer of pos+C
//
// Producers that claim into a full ring wait on the slot's seq (counted in
// PushStalls); consumers with an empty ring wait on head (PopStalls). Both
// waits yield the processor, so the ring degrades gracefully when workers
// outnumber cores.
type Ring struct {
	slots []slot
	mask  uint64
	_     [40]byte
	head  atomic.Uint64 // next position a producer claims
	_     [56]byte
	tail  atomic.Uint64 // next position a consumer claims
	_     [56]byte
	closed     atomic.Bool
	pushStalls atomic.Uint64
	popStalls  atomic.Uint64
	spans      atomic.Uint64 // spans ever published
}

// NewRing returns a ring with at least the requested capacity, rounded up
// to a power of two (minimum 2).
func NewRing(capacity int) *Ring {
	c := 2
	for c < capacity {
		c <<= 1
	}
	r := &Ring{slots: make([]slot, c), mask: uint64(c - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// PushBatch publishes every span, blocking while the ring is full. Spans
// become visible to consumers in claim order. Pushing after Close is a
// protocol violation (the closer is the last producer by construction in
// the replayer) and panics.
func (r *Ring) PushBatch(spans []Span) {
	for len(spans) > 0 {
		chunk := spans
		// Never claim more than the capacity in one go: a claim beyond C
		// outstanding slots could wait on itself.
		if len(chunk) > len(r.slots) {
			chunk = chunk[:len(r.slots)]
		}
		spans = spans[len(chunk):]
		if r.closed.Load() {
			panic("mmtrace: PushBatch after Close")
		}
		n := uint64(len(chunk))
		pos := r.head.Add(n) - n
		for i := range chunk {
			sl := &r.slots[(pos+uint64(i))&r.mask]
			want := pos + uint64(i)
			if sl.seq.Load() != want {
				r.pushStalls.Add(1)
				for sl.seq.Load() != want {
					runtime.Gosched()
				}
			}
			sl.span = chunk[i]
			sl.seq.Store(want + 1)
		}
		r.spans.Add(n)
	}
}

// PopBatch fills dst with up to len(dst) spans, blocking while the ring is
// empty. It returns 0 only when the ring is closed and fully drained —
// the consumer's termination signal.
func (r *Ring) PopBatch(dst []Span) int {
	if len(dst) == 0 {
		return 0
	}
	for {
		t := r.tail.Load()
		h := r.head.Load()
		avail := h - t
		if avail == 0 {
			if r.closed.Load() {
				// Re-read head after observing closed: a producer may have
				// pushed between the head load and its Close.
				if r.head.Load() == t {
					return 0
				}
				continue
			}
			r.popStalls.Add(1)
			runtime.Gosched()
			continue
		}
		n := uint64(len(dst))
		if n > avail {
			n = avail
		}
		if !r.tail.CompareAndSwap(t, t+n) {
			continue
		}
		// Claimed [t, t+n). head may include slots a producer claimed but
		// has not published yet — the per-slot seq wait covers that window.
		for i := uint64(0); i < n; i++ {
			sl := &r.slots[(t+i)&r.mask]
			want := t + i + 1
			if sl.seq.Load() != want {
				r.popStalls.Add(1)
				for sl.seq.Load() != want {
					runtime.Gosched()
				}
			}
			dst[i] = sl.span
			// Release the slot for the producer one revolution ahead.
			sl.seq.Store(t + i + uint64(len(r.slots)))
		}
		return int(n)
	}
}

// Close marks the stream complete. Consumers drain the remaining spans and
// then see 0 from PopBatch. Only the last producer may call Close.
func (r *Ring) Close() { r.closed.Store(true) }

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool { return r.closed.Load() }

// Occupancy returns the spans currently claimed-or-published but not yet
// consumed, clamped to [0, Cap]. It is a racy snapshot, intended for
// telemetry.
func (r *Ring) Occupancy() int {
	h, t := r.head.Load(), r.tail.Load()
	if h < t {
		return 0
	}
	occ := h - t
	if occ > uint64(len(r.slots)) {
		occ = uint64(len(r.slots))
	}
	return int(occ)
}

// RingStats is a telemetry snapshot of the ring's counters.
type RingStats struct {
	Cap        int
	Occupancy  int
	Spans      uint64 // spans ever published
	PushStalls uint64 // producer waits on a full ring
	PopStalls  uint64 // consumer waits on an empty ring
}

// Stats snapshots the ring's counters.
func (r *Ring) Stats() RingStats {
	return RingStats{
		Cap:        len(r.slots),
		Occupancy:  r.Occupancy(),
		Spans:      r.spans.Load(),
		PushStalls: r.pushStalls.Load(),
		PopStalls:  r.popStalls.Load(),
	}
}
