// Package faultnet is a fault-injecting transport for exercising the
// control channel under adverse network conditions. It wraps net.Conn and
// net.Listener with a seeded, deterministic fault Plan — per-direction
// delays, injected connection resets, partial writes, and corrupt or
// truncated frames — so any test in the repo can assert that a component
// survives the fault taxonomy of DESIGN.md §11 without depending on a real
// lossy network.
//
// Determinism: every wrapped connection draws faults from its own
// math/rand stream seeded from Plan.Seed and a per-connection ordinal, so
// a fixed (Plan, connection order) always yields the same fault sequence.
// Wall-clock interleaving across goroutines is of course not fixed, but
// the decisions (which op is delayed, reset, corrupted) are.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned by a wrapped connection when the Plan
// injects a connection reset. The underlying connection is closed, so the
// peer observes EOF/ECONNRESET.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Gate is a runtime-switchable partition control shared by every
// connection whose Plan references it. Unlike the static fault schedule,
// a Gate models *link state*: a drill flips it mid-run to partition, heal,
// or flap a peer while traffic and liveness sessions keep running.
//
// The two directions are independent, which is the asymmetric (one-way)
// partition mode: with only DropWrites set, a daemon still hears requests
// but its answers vanish — the classic "I can hear you, you can't hear me"
// failure that RPC-timeout health checks misclassify and BFD-style
// sessions catch. Dropped writes report success to the writer (a true
// blackhole, not a reset); dropped reads discard whatever arrives and keep
// waiting, so the reader sees silence until its deadline fires.
type Gate struct {
	dropReads  atomic.Bool
	dropWrites atomic.Bool
}

// SetDropReads blackholes (true) or heals (false) the read direction of
// every connection wearing this gate.
func (g *Gate) SetDropReads(v bool) { g.dropReads.Store(v) }

// SetDropWrites blackholes (true) or heals (false) the write direction.
func (g *Gate) SetDropWrites(v bool) { g.dropWrites.Store(v) }

// Partition blackholes both directions; Heal restores both.
func (g *Gate) Partition() { g.dropReads.Store(true); g.dropWrites.Store(true) }

// Heal restores both directions.
func (g *Gate) Heal() { g.dropReads.Store(false); g.dropWrites.Store(false) }

// Dropped reports the current drop state (reads, writes).
func (g *Gate) Dropped() (reads, writes bool) {
	return g.dropReads.Load(), g.dropWrites.Load()
}

// Plan is a deterministic fault schedule. The zero value injects nothing.
// Probabilities are per I/O operation; *Every fields fire on every Nth
// operation (counted per connection, reads and writes separately), which
// gives tests hard guarantees ("every 5th op resets") that probabilistic
// plans cannot.
type Plan struct {
	Seed int64 // base seed; connection i uses Seed*1048583 + i

	// Delays: each read/write sleeps a uniform duration in [0, max].
	ReadDelay  time.Duration
	WriteDelay time.Duration

	// Resets: close the underlying conn and fail the op.
	ResetProb   float64 // per-op probability
	ResetEvery  int     // every Nth op (0 = never); counted across reads+writes
	ResetAfterN int64   // after N total bytes have crossed this conn (0 = never)

	// Write-side frame damage.
	PartialWrites bool    // split writes into random chunks (still delivers all bytes)
	CorruptProb   float64 // flip one byte of the buffer before writing
	CorruptEvery  int     // every Nth write (0 = never)
	TruncateProb  float64 // write a strict prefix, then inject a reset

	// Gate, when set, adds runtime-switchable directional blackholes on top
	// of the static schedule (shared across every connection using this
	// plan — flip it mid-test to partition/heal/flap the link).
	Gate *Gate
}

func (p Plan) active() bool {
	return p.ReadDelay > 0 || p.WriteDelay > 0 || p.ResetProb > 0 || p.ResetEvery > 0 ||
		p.ResetAfterN > 0 || p.PartialWrites || p.CorruptProb > 0 || p.CorruptEvery > 0 ||
		p.TruncateProb > 0 || p.Gate != nil
}

// Conn wraps a net.Conn with fault injection.
type Conn struct {
	net.Conn
	plan Plan

	mu     sync.Mutex // guards rng and counters (reads/writes may be concurrent)
	rng    *rand.Rand
	ops    int   // total I/O ops, for *Every schedules
	writes int   // write ops, for CorruptEvery
	bytes  int64 // total bytes crossed, for ResetAfterN
}

// WrapConn applies plan to conn using the stream for connection ordinal
// ordinal (pass 0 if only one connection is wrapped).
func WrapConn(conn net.Conn, plan Plan, ordinal int64) *Conn {
	return &Conn{
		Conn: conn,
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed*1048583 + ordinal)),
	}
}

// decide runs under c.mu and returns the fault decisions for one op.
func (c *Conn) decide(isWrite bool, n int) (delay time.Duration, reset, corrupt bool, truncateAt int) {
	c.ops++
	if isWrite {
		c.writes++
	}
	max := c.plan.ReadDelay
	if isWrite {
		max = c.plan.WriteDelay
	}
	if max > 0 {
		delay = time.Duration(c.rng.Int63n(int64(max) + 1))
	}
	if c.plan.ResetEvery > 0 && c.ops%c.plan.ResetEvery == 0 {
		reset = true
	}
	if c.plan.ResetProb > 0 && c.rng.Float64() < c.plan.ResetProb {
		reset = true
	}
	if c.plan.ResetAfterN > 0 && c.bytes >= c.plan.ResetAfterN {
		reset = true
	}
	if isWrite {
		if c.plan.CorruptEvery > 0 && c.writes%c.plan.CorruptEvery == 0 {
			corrupt = true
		}
		if c.plan.CorruptProb > 0 && c.rng.Float64() < c.plan.CorruptProb {
			corrupt = true
		}
		truncateAt = -1
		if c.plan.TruncateProb > 0 && n > 1 && c.rng.Float64() < c.plan.TruncateProb {
			truncateAt = 1 + c.rng.Intn(n-1)
		}
	} else {
		truncateAt = -1
	}
	return delay, reset, corrupt, truncateAt
}

// inject closes the underlying conn so the peer sees a reset-like failure.
func (c *Conn) inject() error {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST, not FIN: the peer sees ECONNRESET
	}
	c.Conn.Close()
	return ErrInjectedReset
}

func (c *Conn) Read(b []byte) (int, error) {
	if !c.plan.active() {
		return c.Conn.Read(b)
	}
	if g := c.plan.Gate; g != nil && g.dropReads.Load() {
		// Blackholed direction: whatever arrives is discarded, and the
		// reader keeps waiting — it sees pure silence until its own
		// deadline fires or the connection dies, exactly like a one-way
		// partition. Healing mid-wait resumes delivery with the next frame
		// (bytes discarded during the outage are lost, as on a real link).
		scratch := make([]byte, 4096)
		for g.dropReads.Load() {
			if _, err := c.Conn.Read(scratch); err != nil {
				return 0, err
			}
		}
	}
	c.mu.Lock()
	delay, reset, _, _ := c.decide(false, len(b))
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		return 0, c.inject()
	}
	n, err := c.Conn.Read(b)
	c.mu.Lock()
	c.bytes += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if !c.plan.active() {
		return c.Conn.Write(b)
	}
	if g := c.plan.Gate; g != nil && g.dropWrites.Load() {
		// Blackholed direction: report success without delivering — the
		// peer never sees these bytes and no error surfaces to the writer
		// (dropped bytes do not count toward ResetAfterN: they never
		// crossed the link).
		return len(b), nil
	}
	c.mu.Lock()
	delay, reset, corrupt, truncateAt := c.decide(true, len(b))
	var chunks []int
	if c.plan.PartialWrites && len(b) > 1 {
		// Pre-draw the chunk boundaries under the lock for determinism.
		rem := len(b)
		for rem > 1 {
			n := 1 + c.rng.Intn(rem)
			chunks = append(chunks, n)
			rem -= n
		}
		if rem > 0 {
			chunks = append(chunks, rem)
		}
	}
	var corruptAt int
	if corrupt && len(b) > 0 {
		corruptAt = c.rng.Intn(len(b))
	}
	c.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		return 0, c.inject()
	}
	if corrupt && len(b) > 0 {
		// Never mutate the caller's buffer: bufio reuses it.
		dup := make([]byte, len(b))
		copy(dup, b)
		dup[corruptAt] ^= 0x5a
		if dup[corruptAt] == '\n' { // keep framing intact; damage the payload
			dup[corruptAt] = '#'
		}
		b = dup
	}
	if truncateAt >= 0 && truncateAt < len(b) {
		n, err := c.Conn.Write(b[:truncateAt])
		if err != nil {
			return n, err
		}
		c.mu.Lock()
		c.bytes += int64(n)
		c.mu.Unlock()
		return n, c.inject()
	}
	if len(chunks) > 0 {
		total := 0
		for _, n := range chunks {
			w, err := c.Conn.Write(b[total : total+n])
			total += w
			c.mu.Lock()
			c.bytes += int64(w)
			c.mu.Unlock()
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	n, err := c.Conn.Write(b)
	c.mu.Lock()
	c.bytes += int64(n)
	c.mu.Unlock()
	return n, err
}

// Listener wraps a net.Listener; every accepted connection gets the Plan
// with a fresh deterministic stream.
type Listener struct {
	net.Listener
	plan Plan
	next atomic.Int64
}

// WrapListener applies plan to every connection ln accepts.
func WrapListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, l.plan, l.next.Add(1)), nil
}

// Dialer produces fault-injected client-side connections.
type Dialer struct {
	Plan    Plan
	Timeout time.Duration // per-dial timeout (0 = net default)
	next    atomic.Int64
}

// Dial connects and wraps the connection with the Dialer's plan.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	conn, err := net.DialTimeout(network, addr, d.Timeout)
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, d.Plan, d.next.Add(1)), nil
}
