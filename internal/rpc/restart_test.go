package rpc

import (
	"errors"
	"testing"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
)

// Tests for a client surviving a GENUINE daemon restart: same address, new
// process state (fresh controller, fresh incarnation) — not just a dropped
// connection. This is the exact sequence the fleet reconciler depends on.

func restartConfig() controlplane.Config {
	return controlplane.Config{Groups: 3, Buckets: 4096, BitWidth: 32}
}

func TestClientReconnectsAcrossServerRestart(t *testing.T) {
	cfg := restartConfig()
	srv := NewServer(controlplane.NewController(cfg), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inc1 := srv.Incarnation()

	c, err := DialOptions(addr, Options{
		DialTimeout:      time.Second,
		CallTimeout:      time.Second,
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  150 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	spec := controlplane.TaskSpec{Name: "before", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 1024, D: 2}
	if res, err := c.AddTask(spec); err != nil || res.ID != 1 {
		t.Fatalf("add on first incarnation: id=%d err=%v", res.ID, err)
	}

	// The daemon dies. Consecutive failures open the breaker...
	srv.Close()
	for i := 0; i < 2; i++ {
		if err := c.Ping(); err == nil {
			t.Fatal("ping succeeded against a dead daemon")
		}
	}
	if st, _ := c.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker = %v after threshold failures, want open", st)
	}
	// ...and while open, calls fail FAST with ErrCircuitOpen (no dial, no
	// timeout burned).
	start := time.Now()
	err = c.Ping()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call under open breaker = %v, want ErrCircuitOpen", err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("open-breaker call took %v, want fail-fast", el)
	}

	// A genuinely new process takes over the address: fresh controller
	// (empty task table), fresh incarnation.
	srv2 := NewServer(controlplane.NewController(cfg), nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if srv2.Incarnation() == inc1 {
		t.Fatal("restarted server kept the old incarnation")
	}

	// After the cooldown the half-open probe is admitted, succeeds against
	// the new process, and closes the breaker.
	time.Sleep(200 * time.Millisecond)
	if err := c.Ping(); err != nil {
		t.Fatalf("half-open probe after restart: %v", err)
	}
	if st, _ := c.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", st)
	}

	// The client is talking to the NEW state: the task table is empty and
	// IDs restart from 1.
	tasks, err := c.ListTasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Fatalf("restarted daemon reports %d tasks, want 0", len(tasks))
	}
	spec.Name = "after"
	if res, err := c.AddTask(spec); err != nil || res.ID != 1 {
		t.Fatalf("add on second incarnation: id=%d err=%v", res.ID, err)
	}
}

// TestHelloUnmasksRestart drives the wire-level liveness handshake across
// a restart: the daemon's answer goes back to Down with a new incarnation,
// exactly the signal the controller-side session uses to tear down.
func TestHelloUnmasksRestart(t *testing.T) {
	cfg := restartConfig()
	srv := NewServer(controlplane.NewController(cfg), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(addr, Options{
		DialTimeout: time.Second, CallTimeout: time.Second,
		MaxRetries: -1, BreakerThreshold: 1000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Three-way handshake against the first incarnation.
	r1, err := c.Hello("s1", HelloStateDown, 20*time.Millisecond)
	if err != nil || r1.State != HelloStateInit {
		t.Fatalf("hello(down) = %+v, %v; want init", r1, err)
	}
	r2, err := c.Hello("s1", HelloStateInit, 20*time.Millisecond)
	if err != nil || r2.State != HelloStateUp {
		t.Fatalf("hello(init) = %+v, %v; want up", r2, err)
	}
	if r2.Incarnation != r1.Incarnation || r2.Incarnation == 0 {
		t.Fatalf("incarnation unstable within one process: %d vs %d", r1.Incarnation, r2.Incarnation)
	}

	// Restart. The new process has no session state and a new incarnation:
	// our Up is answered with Down (the daemon-side machine refuses to jump
	// to Up for a session it never initialized).
	srv.Close()
	srv2 := NewServer(controlplane.NewController(cfg), nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	var r3 HelloResult
	for i := 0; i < 3; i++ { // first call may land on the torn-down conn
		if r3, err = c.Hello("s1", HelloStateUp, 20*time.Millisecond); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("hello after restart: %v", err)
	}
	if r3.State != HelloStateDown {
		t.Fatalf("restarted daemon answered state %s, want down", HelloStateString(r3.State))
	}
	if r3.Incarnation == r1.Incarnation {
		t.Fatal("restarted daemon kept the old incarnation")
	}
}
