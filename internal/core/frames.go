package core

import (
	"flymon/internal/mmtrace"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// This file is the FrameView-native engine: Snapshot.ProcessFrames executes
// a span of mmapped trace records with no packet.Packet materialization,
// restructured from packet-at-a-time to stage-at-a-time over fixed-size
// chunks:
//
//   1. Batch digest kernel. Each of the snapshot's distinct field masks is
//      extracted for the whole chunk in one tight loop straight from the
//      record bytes (FrameView.ExtractMasked), then each distinct
//      (mask, polynomial) digest is computed over the chunk's pre-masked
//      keys. The dedup decisions were made at Compile time; the loops carry
//      no per-packet map lookups or dispatch.
//   2. Grouped register application. For each CMU rule, the chunk's
//      surviving updates are gathered as (index, p1, p2) triples and applied
//      by one dataplane.ApplyBatch/ShardApplyBatch call, which hoists the op
//      dispatch out of the loop and prefetches the target counter lines
//      ahead of the CAS/store loop. Results scatter back onto per-frame
//      result-bus arrays, preserving the cross-CMU bus semantics
//      (PrevResult/PrevOld/RunningMin/PrevNewFlow) exactly.
//
// Equivalence to the sequential path. Within one CMU, rules select disjoint
// frame sets (first-match), every rule's updates are applied in frame
// order, and distinct rules of a CMU own disjoint bucket ranges (enforced
// at install time) on a register no other CMU touches — so the per-bucket
// update sequence a register observes is identical to the packet-at-a-time
// order, and with it every result/old witness, clamp event, and telemetry
// count. The chunk reordering only interleaves updates of *different*
// buckets, which no observable depends on.
//
// Two configurations fall off the vectorized path (Snapshot.frameVec,
// decided at Compile): live spliced groups (the mirror decision and the
// recirculated pass are inherently per-packet) and probabilistically gated
// rules (the rng coin stream advances in strict packet order; vectorizing
// would reorder the flips). ProcessFrames then decodes each frame into the
// context's scratch packet and runs the sequential path — bit-identical by
// construction, and the reason a mid-replay reconfiguration into such a
// configuration is safe: the engine switches form at the next batch, never
// changing results.

// frameChunk is the stage-at-a-time chunk width in frames. 256 keeps the
// whole scratch (masked keys, digest matrix, bus and gather arrays) L1/L2
// resident for the bench pipeline's 9 masks + 9 digests while giving the
// batched register loops enough depth for prefetch to overlap misses.
const frameChunk = 256

// frameScratch is the chunk engine's per-worker state, embedded in ProcCtx.
// The dynamic slices are sized to the armed snapshot's digest tables; after
// the first chunk of a configuration the engine is allocation-free (the
// ZeroAlloc gate covers it).
type frameScratch struct {
	// snap is the snapshot masked/hashes are sized for.
	snap *Snapshot
	// masked holds each distinct mask's canonical keys, laid out
	// [mask][frame] with stride frameChunk.
	masked []packet.CanonicalKey
	// hashes holds each distinct digest slot, laid out [slot][frame] with
	// stride frameChunk; compiledSel.resolveFlat indexes it directly.
	hashes []uint32

	// Per-frame result bus: the batch counterparts of Context.PrevResult,
	// PrevOld, RunningMin, and PrevNewFlow.
	busRes [frameChunk]uint32
	busOld [frameChunk]uint32
	busMin [frameChunk]uint32
	busNew [frameChunk]bool
	// rule is the per-frame first-match rule selection of the current CMU
	// (multi-rule CMUs only).
	rule [frameChunk]uint8

	// Gather buffers for one rule's grouped register application: the
	// selected frames, then per surviving update its frame, bucket index,
	// parameters, and witnessed (result, old).
	sel     [frameChunk]int32
	upFrame [frameChunk]int32
	upIdx   [frameChunk]uint32
	upP1    [frameChunk]uint32
	upP2    [frameChunk]uint32
	upRes   [frameChunk]uint32
	upOld   [frameChunk]uint32
}

// arm sizes the digest scratch for s. Only a snapshot with more distinct
// masks or digests allocates; republishing a same-shape configuration is
// free.
func (fs *frameScratch) arm(s *Snapshot) {
	if fs.snap == s {
		return
	}
	fs.snap = s
	if need := len(s.masks) * frameChunk; cap(fs.masked) < need {
		fs.masked = make([]packet.CanonicalKey, need)
	}
	fs.masked = fs.masked[:len(s.masks)*frameChunk]
	if need := len(s.hashes) * frameChunk; cap(fs.hashes) < need {
		fs.hashes = make([]uint32, need)
	}
	fs.hashes = fs.hashes[:len(s.hashes)*frameChunk]
}

// FrameVectorized reports whether ProcessFrames runs the stage-at-a-time
// engine for this snapshot (false = the per-frame decode fallback).
func (s *Snapshot) FrameVectorized() bool { return s.frameVec }

// ProcessFrames pushes frames [lo, hi) of t through the compiled pipeline
// with no packet materialization. Results — register contents, result-bus
// interactions, telemetry counts, clamp events — are bit-identical to
// decoding the same frames and calling Process on each in order. Safe for
// concurrent callers with distinct contexts, like Process.
func (s *Snapshot) ProcessFrames(pc *ProcCtx, t *mmtrace.Trace, lo, hi int) {
	if !s.frameVec {
		// Sequential fallback: spliced groups or probabilistic rules need
		// strict packet order. Decode into the context's scratch packet —
		// still no per-frame allocation.
		p := &pc.framePkt
		for i := lo; i < hi; i++ {
			t.At(i).Decode(p)
			s.Process(pc, p)
		}
		return
	}
	for lo < hi {
		n := hi - lo
		if n > frameChunk {
			n = frameChunk
		}
		s.processFrameChunk(pc, t.Span(lo, lo+n), n)
		lo += n
	}
}

// processFrameChunk runs one chunk of n frames (recs holds exactly their
// record bytes) through every stage.
func (s *Snapshot) processFrameChunk(pc *ProcCtx, recs []byte, n int) {
	s.pl.packets.Add(uint64(n))
	if s.teleOn {
		pc.teleTickBatch(s, n)
	}
	fs := &pc.frames
	fs.arm(s)

	// Stage 1a: masked canonical keys, one mask at a time over the chunk.
	for m := range s.masks {
		mask := &s.masks[m]
		dst := fs.masked[m*frameChunk : m*frameChunk+n]
		off := 0
		for i := 0; i < n; i++ {
			mmtrace.FrameView(recs[off:off+trace.RecordSize]).ExtractMasked(mask, &dst[i])
			off += trace.RecordSize
		}
	}
	// Stage 1b: digests, one (mask, polynomial) slot at a time.
	for h := range s.hashes {
		sh := &s.hashes[h]
		src := fs.masked[sh.mask*frameChunk:]
		dst := fs.hashes[h*frameChunk : h*frameChunk+n]
		for i := 0; i < n; i++ {
			dst[i] = sh.h.SumKey(&src[i])
		}
	}
	// Fresh PHV per frame: the result bus starts from reset state.
	for i := 0; i < n; i++ {
		fs.busRes[i], fs.busOld[i] = 0, 0
		fs.busMin[i] = ^uint32(0)
		fs.busNew[i] = false
	}
	// Stage 2: CMUs in pipeline order, each over the whole chunk.
	for gi := range s.groups {
		sg := &s.groups[gi]
		for ci := range sg.cmus {
			cmuFrames(pc, &sg.cmus[ci], recs, n)
		}
	}
}

// cmuFrames executes one CMU's program over the chunk: first-match rule
// selection per frame, then each rule's grouped update over the frames it
// won. A match-all rule at position 0 wins every frame (the dominant case —
// whole-traffic sketches), skipping the selection pass entirely.
func cmuFrames(pc *ProcCtx, sc *snapCMU, recs []byte, n int) {
	prog := sc.prog
	if prog[0].match.kind == matchAll {
		ruleFrames(pc, &prog[0], recs, n, nil)
		return
	}
	fs := &pc.frames
	const noRule = 0xFF
	rsel := fs.rule[:n]
	off := 0
	for i := 0; i < n; i++ {
		v := mmtrace.FrameView(recs[off : off+trace.RecordSize])
		rsel[i] = noRule
		for ri := range prog {
			if prog[ri].match.matchesFrame(v) {
				rsel[i] = uint8(ri)
				break
			}
		}
		off += trace.RecordSize
	}
	for ri := range prog {
		cnt := 0
		for i := 0; i < n; i++ {
			if rsel[i] == uint8(ri) {
				fs.sel[cnt] = int32(i)
				cnt++
			}
		}
		if cnt > 0 {
			ruleFrames(pc, &prog[ri], recs, n, fs.sel[:cnt])
		}
	}
}

// ruleFrames runs one compiled rule over its selected frames (sel nil =
// every frame in the chunk): gather the surviving (index, p1, p2) updates,
// apply them with one batched register call, scatter the witnesses back
// onto the result bus. Mirrors compiledRule.exec stage for stage.
func ruleFrames(pc *ProcCtx, r *compiledRule, recs []byte, n int, sel []int32) {
	fs := &pc.frames
	m := n
	if sel != nil {
		m = len(sel)
	}
	// exec counts a rule hit before the preparation stage can drop.
	if r.teleSlot >= 0 {
		pc.tele[r.teleSlot] += uint64(m)
	}
	// Frequency-sketch fast path: with no bus consumers in the snapshot the
	// witnesses are dead, and a constant saturating add needs only the
	// bucket indexes — resolve them in one hoisted loop and apply with the
	// witness-free fetch-and-add (shared) or plain-add (lane) batch call.
	if r.fastAdd && fs.snap.busQuiet {
		lane := r.sharded && pc.Ctx.Shard >= 0
		if lane || r.fastAddFull {
			idx := fs.upIdx[:frameChunk]
			gatherIdxFrames(r, fs, n, sel, idx)
			if lane {
				r.reg.ShardApplyAddBatch(int(pc.Ctx.Shard), idx[:m], r.p1.value)
			} else {
				r.reg.ApplyAddBatch(idx[:m], r.p1.value)
			}
			return
		}
	}
	k := 0
	for j := 0; j < m; j++ {
		i := j
		if sel != nil {
			i = int(sel[j])
		}
		addr := r.key.resolveFlat(fs.hashes, i)
		var index uint32
		if r.shifted {
			index = r.base + addr>>r.addrShift
		} else {
			index = r.base + addr&r.addrMask
		}
		p1 := frameParam(&r.p1, recs, i, fs)
		p2 := frameParam(&r.p2, recs, i, fs)
		if r.chainMin {
			p2 = fs.busMin[i]
		}
		if r.hasPrep {
			var drop bool
			p1, p2, drop = r.prep.applyVals(p1, p2, fs.busOld[i], fs.busNew[i])
			if drop {
				// A dropped update leaves the frame's bus untouched,
				// exactly like exec's early return.
				pc.Ctx.PrepDrops++
				continue
			}
		}
		fs.upFrame[k] = int32(i)
		fs.upIdx[k], fs.upP1[k], fs.upP2[k] = index, p1, p2
		k++
	}
	if k == 0 {
		return
	}
	if r.sharded && pc.Ctx.Shard >= 0 {
		r.reg.ShardApplyBatch(int(pc.Ctx.Shard), r.op,
			fs.upIdx[:k], fs.upP1[:k], fs.upP2[:k], fs.upRes[:k], fs.upOld[:k])
	} else {
		r.reg.ApplyBatch(r.op,
			fs.upIdx[:k], fs.upP1[:k], fs.upP2[:k], fs.upRes[:k], fs.upOld[:k])
	}
	if fs.snap.busQuiet {
		// No rule in the snapshot reads the bus: the scatter would only
		// write dead values.
		return
	}
	for j := 0; j < k; j++ {
		i := int(fs.upFrame[j])
		res, oldv := fs.upRes[j], fs.upOld[j]
		fs.busRes[i], fs.busOld[i] = res, oldv
		if r.chainMin && res > 0 && res < fs.busMin[i] {
			fs.busMin[i] = res
		}
		if r.detectNew {
			fs.busNew[i] = oldv&fs.upP1[j] == 0
		}
	}
}

// gatherIdxFrames fills idx[0:m] with the rule's bucket index for each
// selected frame (sel nil = the whole chunk) — resolveFlat plus the address
// translation, with the digest-row bases and selector constants hoisted out
// of the loop so the body is pure array arithmetic.
func gatherIdxFrames(r *compiledRule, fs *frameScratch, n int, sel []int32, idx []uint32) {
	key := &r.key
	var ha, hb []uint32
	if key.a >= 0 {
		ha = fs.hashes[int(key.a)*frameChunk : int(key.a)*frameChunk+n]
	}
	if key.b >= 0 {
		hb = fs.hashes[int(key.b)*frameChunk : int(key.b)*frameChunk+n]
	}
	rot, kmask, base := key.rot, key.mask, r.base
	if sel == nil {
		for i := 0; i < n; i++ {
			var v uint32
			if ha != nil {
				v = ha[i]
			}
			if hb != nil {
				v ^= hb[i]
			}
			if rot != 0 {
				v = v>>rot | v<<(32-rot)
			}
			v &= kmask
			if r.shifted {
				idx[i] = base + v>>r.addrShift
			} else {
				idx[i] = base + v&r.addrMask
			}
		}
		return
	}
	for j, si := range sel {
		i := int(si)
		var v uint32
		if ha != nil {
			v = ha[i]
		}
		if hb != nil {
			v ^= hb[i]
		}
		if rot != 0 {
			v = v>>rot | v<<(32-rot)
		}
		v &= kmask
		if r.shifted {
			idx[j] = base + v>>r.addrShift
		} else {
			idx[j] = base + v&r.addrMask
		}
	}
}

// frameParam resolves a compiled parameter for frame i — the FrameView
// counterpart of compiledParam.resolve, loading metadata fields lazily from
// the record bytes and bus parameters from the per-frame arrays.
func frameParam(cp *compiledParam, recs []byte, i int, fs *frameScratch) uint32 {
	switch cp.kind {
	case ParamConst:
		return cp.value
	case ParamPacketSize:
		return mmtrace.FrameView(recs[i*trace.RecordSize:]).Size()
	case ParamTimestampUs:
		return uint32(mmtrace.FrameView(recs[i*trace.RecordSize:]).TimestampNs() / 1000)
	case ParamQueueLength:
		return mmtrace.FrameView(recs[i*trace.RecordSize:]).QueueLength()
	case ParamQueueDelay:
		return mmtrace.FrameView(recs[i*trace.RecordSize:]).QueueDelayNs()
	case ParamCompressedKey:
		return cp.sel.resolveFlat(fs.hashes, i)
	case ParamPrevResult:
		return fs.busRes[i]
	case ParamPrevOld:
		return fs.busOld[i]
	default:
		return 0
	}
}

// resolveFlat is compiledSel.resolve against the chunk digest matrix
// ([slot][frame], stride frameChunk) instead of a single packet's digest
// vector.
func (cs *compiledSel) resolveFlat(hashes []uint32, i int) uint32 {
	var v uint32
	if cs.a >= 0 {
		v = hashes[int(cs.a)*frameChunk+i]
	}
	if cs.b >= 0 {
		v ^= hashes[int(cs.b)*frameChunk+i]
	}
	if cs.rot != 0 {
		v = v>>cs.rot | v<<(32-cs.rot)
	}
	return v & cs.mask
}

// matchesFrame is compiledMatch.matches over the raw record — same
// comparisons, lazy field loads.
func (cm *compiledMatch) matchesFrame(v mmtrace.FrameView) bool {
	switch cm.kind {
	case matchAll:
		return true
	case matchExact:
		return (cm.srcPort == 0 || cm.srcPort == v.SrcPort()) &&
			(cm.dstPort == 0 || cm.dstPort == v.DstPort()) &&
			(cm.proto == 0 || cm.proto == v.Proto())
	case matchPrefix:
		return v.SrcIP()&cm.srcMask == cm.srcVal &&
			v.DstIP()&cm.dstMask == cm.dstVal
	default:
		return v.SrcIP()&cm.srcMask == cm.srcVal &&
			v.DstIP()&cm.dstMask == cm.dstVal &&
			(cm.srcPort == 0 || cm.srcPort == v.SrcPort()) &&
			(cm.dstPort == 0 || cm.dstPort == v.DstPort()) &&
			(cm.proto == 0 || cm.proto == v.Proto())
	}
}
