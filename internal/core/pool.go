package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"flymon/internal/mmtrace"
	"flymon/internal/packet"
)

// WorkerPool is a persistent pool of packet-processing workers — the
// multi-pipe model with the goroutine churn compiled out. Snapshot's own
// ProcessParallel spawns a goroutine and a fresh ProcCtx per chunk per
// call; at millions of batches that spawn/alloc tax dominates. A pool
// starts its workers once: each worker owns one reusable ProcCtx with a
// unique rng stream (created via NewProcCtxUnique, so probabilistic rules
// never sample in lockstep across workers) whose digest scratch stays
// warm across batches, and batches are sharded over a channel.
//
// The pool is snapshot-agnostic: every job carries the snapshot it must
// execute against, so one pool serves a controller across arbitrarily many
// RCU republishes.
type WorkerPool struct {
	jobs    chan poolJob
	workers int
	sharded bool         // workers own register lanes (ctx.Shard = worker index)
	started atomic.Int64 // worker goroutines ever started; stays == workers
	close   sync.Once
}

type poolJob struct {
	snap *Snapshot
	seg  []packet.Packet
	// Source-drain jobs (ProcessSource) set src and load instead of
	// snap/seg: the worker pulls batches from src until exhaustion,
	// reloading the snapshot per batch so on-the-fly reconfiguration stays
	// visible mid-replay. gate, when non-nil, is held shared around each
	// batch (the sharded engine's procGate: drains need lane exclusivity).
	src  BatchSource
	load func() *Snapshot
	gate *sync.RWMutex
	wg   *sync.WaitGroup
	// Frame-drain jobs (ProcessFrameSource) set fsrc instead of src: the
	// worker pulls raw frame spans and executes them through the
	// FrameView-native engine (Snapshot.ProcessFrames), skipping packet
	// materialization entirely.
	fsrc FrameSource
}

// BatchSource feeds pool workers packet batches — the pull-side contract
// of the replay path (internal/mmtrace.Replayer implements it over an
// mmap-backed span ring). Next returns the next batch for worker w, or nil
// when the source is exhausted; the returned slice is owned by the source
// and valid only until w's next call. Next must be safe for concurrent
// calls with distinct w.
type BatchSource interface {
	Next(w int) []packet.Packet
}

// FrameSource feeds pool workers raw trace spans — the zero-materialization
// counterpart of BatchSource. NextFrames returns the trace and the frame
// range [lo, hi) worker w should process next, or (nil, 0, 0) when the
// source is exhausted. The returned trace is immutable and shared; the
// range is exclusively w's. NextFrames must be safe for concurrent calls
// with distinct w. internal/mmtrace.Replayer implements both contracts over
// the same span ring.
type FrameSource interface {
	NextFrames(w int) (t *mmtrace.Trace, lo, hi int)
}

// NewWorkerPool starts a pool of n long-lived workers (n <= 0 takes
// GOMAXPROCS). The workers live until Close.
func NewWorkerPool(n int) *WorkerPool { return newWorkerPool(n, false) }

// NewShardedWorkerPool starts a pool whose workers each own one private
// register lane: worker i processes with ctx.Shard = i, so compiled rules
// whose ops are exactly mergeable write lane i with plain stores instead
// of CASing the shared bucket. The pool must be sized to the registers'
// EnableSharding count — lane indices at or past the lane count are a
// wiring bug and panic in ShardApply.
func NewShardedWorkerPool(n int) *WorkerPool { return newWorkerPool(n, true) }

func newWorkerPool(n int, sharded bool) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &WorkerPool{jobs: make(chan poolJob, 4*n), workers: n, sharded: sharded}
	for i := 0; i < n; i++ {
		p.started.Add(1)
		go p.run(i)
	}
	return p
}

// run is one worker's loop: a single context, reused for every job.
func (p *WorkerPool) run(id int) {
	pc := NewProcCtxUnique()
	if p.sharded {
		pc.Ctx.Shard = int32(id)
	}
	for j := range p.jobs {
		if j.src != nil {
			p.drainSource(pc, id, j)
			j.wg.Done()
			continue
		}
		if j.fsrc != nil {
			p.drainFrames(pc, id, j)
			j.wg.Done()
			continue
		}
		for i := range j.seg {
			j.snap.Process(pc, &j.seg[i])
		}
		// Flush pending telemetry before releasing the batch so counts are
		// scrape-exact once the caller's Process returns.
		pc.teleFlush()
		j.wg.Done()
	}
}

// drainSource pulls batches from a source job until exhaustion. Each batch
// runs against a freshly loaded snapshot under a shared gate acquisition,
// so control-plane mutations (republish, drain, resize) interleave with a
// long replay at batch granularity instead of waiting for the whole
// stream.
func (p *WorkerPool) drainSource(pc *ProcCtx, id int, j poolJob) {
	for {
		ps := j.src.Next(id)
		if ps == nil {
			return
		}
		if j.gate != nil {
			j.gate.RLock()
		}
		snap := j.load()
		for i := range ps {
			snap.Process(pc, &ps[i])
		}
		pc.teleFlush()
		if j.gate != nil {
			j.gate.RUnlock()
		}
	}
}

// drainFrames is drainSource over raw frame spans: same batch-granular
// snapshot reload and gate discipline, but the span executes through
// Snapshot.ProcessFrames — the stage-at-a-time engine when the snapshot is
// eligible, the per-frame decode fallback otherwise. Either way a mid-span
// republish lands at the next span boundary with bit-identical results.
func (p *WorkerPool) drainFrames(pc *ProcCtx, id int, j poolJob) {
	for {
		t, lo, hi := j.fsrc.NextFrames(id)
		if t == nil {
			return
		}
		if j.gate != nil {
			j.gate.RLock()
		}
		snap := j.load()
		snap.ProcessFrames(pc, t, lo, hi)
		pc.teleFlush()
		if j.gate != nil {
			j.gate.RUnlock()
		}
	}
}

// Workers returns the pool's worker count.
func (p *WorkerPool) Workers() int { return p.workers }

// Sharded reports whether the pool's workers own register lanes.
func (p *WorkerPool) Sharded() bool { return p.sharded }

// Started returns the number of worker goroutines ever started. It equals
// Workers for the pool's whole lifetime — the property the pool exists
// for — and tests assert it stays flat across Process calls.
func (p *WorkerPool) Started() int64 { return p.started.Load() }

// Process shards ps into `shards` contiguous chunks (shards <= 0 takes the
// worker count) and executes them on the pool's workers against one
// consistent snapshot, returning when every packet is processed. shards <= 1
// degenerates to the sequential, deterministic ProcessBatch. Safe for
// concurrent callers; per-bucket register updates are atomic, so commuting
// ops keep exact counts regardless of sharding.
func (p *WorkerPool) Process(s *Snapshot, ps []packet.Packet, shards int) {
	if len(ps) == 0 {
		return
	}
	if shards <= 0 {
		shards = p.workers
	}
	if shards > len(ps) {
		shards = len(ps)
	}
	if shards <= 1 {
		s.ProcessBatch(ps)
		return
	}
	chunk := (len(ps) + shards - 1) / shards
	var wg sync.WaitGroup
	for lo := 0; lo < len(ps); lo += chunk {
		hi := lo + chunk
		if hi > len(ps) {
			hi = len(ps)
		}
		wg.Add(1)
		p.jobs <- poolJob{snap: s, seg: ps[lo:hi], wg: &wg}
	}
	wg.Wait()
}

// ProcessSource runs every pool worker against src until it is exhausted,
// then returns. load supplies the snapshot — reloaded per batch, so an RCU
// republish mid-replay takes effect at the next batch boundary. gate, when
// non-nil, is acquired shared around each batch (pass the controller's
// procGate in sharded mode; nil otherwise). The call allocates only the
// per-call WaitGroup: the steady-state batch loop is allocation-free.
func (p *WorkerPool) ProcessSource(load func() *Snapshot, src BatchSource, gate *sync.RWMutex) {
	var wg sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		p.jobs <- poolJob{src: src, load: load, gate: gate, wg: &wg}
	}
	wg.Wait()
}

// ProcessFrameSource is ProcessSource for a FrameSource: every worker
// drains raw frame spans through the FrameView-native engine until the
// source is exhausted. Snapshot reload and gate semantics are identical to
// ProcessSource.
func (p *WorkerPool) ProcessFrameSource(load func() *Snapshot, src FrameSource, gate *sync.RWMutex) {
	var wg sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		p.jobs <- poolJob{fsrc: src, load: load, gate: gate, wg: &wg}
	}
	wg.Wait()
}

// Close shuts the workers down. Process must not be called after Close;
// Close is idempotent.
func (p *WorkerPool) Close() {
	p.close.Do(func() { close(p.jobs) })
}
