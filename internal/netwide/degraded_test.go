package netwide

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/trace"
)

// resilientDaemons boots n daemons and returns controllers, clients tuned
// for fast failure detection, servers (for killing/restarting), and addrs.
func resilientDaemons(t *testing.T, n int, cfg controlplane.Config) ([]*controlplane.Controller, []*rpc.Client, []*rpc.Server, []string) {
	t.Helper()
	ctrls := make([]*controlplane.Controller, n)
	clients := make([]*rpc.Client, n)
	srvs := make([]*rpc.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ctrls[i] = controlplane.NewController(cfg)
		srvs[i] = rpc.NewServer(ctrls[i], nil)
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		srv := srvs[i]
		t.Cleanup(func() { srv.Close() })
		c, err := rpc.DialOptions(addr, rpc.Options{
			DialTimeout:      time.Second,
			CallTimeout:      2 * time.Second,
			MaxRetries:       -1,
			BackoffBase:      5 * time.Millisecond,
			BackoffMax:       50 * time.Millisecond,
			BreakerThreshold: 1000, // fleet tests manage failure counts themselves
			Seed:             int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return ctrls, clients, srvs, addrs
}

func gateFleetGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if now := runtime.NumGoroutine(); now <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
}

func TestFleetPartialQueryWithDaemonDown(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients, srvs, _ := resilientDaemons(t, 3, cfg)
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{AllowPartial: true, DownAfter: 2})
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}

	tr := trace.Generate(trace.Config{Flows: 300, Packets: 9_000, Seed: 21})
	for i := range tr.Packets {
		ctrls[i%3].Process(&tr.Packets[i])
	}

	// Healthy fleet: full merge, nothing missing.
	key := packet.KeyFiveTuple.Extract(&tr.Packets[0])
	full, report, err := fleet.EstimateKeyPartial("freq", key)
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial() || len(report.Contributed) != 3 {
		t.Fatalf("healthy report = %+v", report)
	}

	// Kill daemon 2: the query degrades instead of failing.
	srvs[2].Close()
	part, report, err := fleet.EstimateKeyPartial("freq", key)
	if err != nil {
		t.Fatalf("partial query with one daemon down: %v", err)
	}
	if !report.Partial() {
		t.Fatal("report must be marked partial")
	}
	if len(report.Contributed) != 2 || report.Contributed[0] != 0 || report.Contributed[1] != 1 {
		t.Fatalf("contributed = %v, want [0 1]", report.Contributed)
	}
	if _, ok := report.Failed[2]; !ok {
		t.Fatalf("failed set = %v, want switch 2", report.Failed)
	}
	if part > full {
		t.Fatalf("partial merge %d exceeds full merge %d — not a lower bound", part, full)
	}

	// Health: repeated failures march switch 2 degraded → down.
	if _, _, err := fleet.EstimateKeyPartial("freq", key); err != nil {
		t.Fatal(err)
	}
	h := fleet.Health()
	if h[0].State != SwitchHealthy || h[1].State != SwitchHealthy {
		t.Fatalf("healthy switches misreported: %+v", h)
	}
	if h[2].State != SwitchDown {
		t.Fatalf("switch 2 state = %v after %d consecutive failures", h[2].State, h[2].ConsecutiveFailures)
	}
	if h[2].LastError == "" || h[2].ConsecutiveFailures < 2 {
		t.Fatalf("switch 2 health detail = %+v", h[2])
	}
}

func TestFleetStrictModeFailsOnDownDaemon(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	_, clients, srvs, _ := resilientDaemons(t, 2, cfg)
	fleet := NewRemoteFleet(clients, cfg) // AllowPartial off
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}
	srvs[1].Close()
	if _, err := fleet.EstimateKey("freq", packet.CanonicalKey{1}); err == nil {
		t.Fatal("strict fleet must fail when a daemon is down")
	}
}

func TestFleetRemoveKeepsHandleOnPartialFailure(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients, srvs, addrs := resilientDaemons(t, 2, cfg)
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{AllowPartial: true})
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}

	// Daemon 1 dies; Remove must fail with a structured error naming it,
	// and KEEP the task handle so removal can be retried.
	srvs[1].Close()
	err := fleet.Remove("freq")
	var pf *PartialFailureError
	if !errors.As(err, &pf) {
		t.Fatalf("remove error = %v (%T), want PartialFailureError", err, err)
	}
	if got := pf.Stragglers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", got)
	}
	if len(ctrls[0].Tasks()) != 0 {
		t.Fatal("reachable daemon 0 should have removed its task")
	}
	if len(ctrls[1].Tasks()) != 1 {
		t.Fatal("daemon 1 must still hold the stranded task")
	}

	// Daemon 1 comes back (same controller, same address): the retry only
	// needs the straggler — daemon 0 answering "no task" counts as done.
	srv := rpc.NewServer(ctrls[1], nil)
	if _, err := srv.Listen(addrs[1]); err != nil {
		t.Fatalf("rebind %s: %v", addrs[1], err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := fleet.Remove("freq"); err != nil {
		t.Fatalf("retry remove: %v", err)
	}
	if len(ctrls[1].Tasks()) != 0 {
		t.Fatal("stranded task not removed on retry")
	}
	// The handle is gone only now.
	if err := fleet.Remove("freq"); err == nil {
		t.Fatal("third remove must report no task")
	}
}

func TestFleetOpTimeoutBoundsHungDaemon(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients, srvs, _ := resilientDaemons(t, 2, cfg)
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{
		AllowPartial: true,
		OpTimeout:    300 * time.Millisecond,
	})
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}

	// Replace daemon 1 with a tarpit: accepts, never answers. The client's
	// own CallTimeout is 2s, but the fleet-level deadline must cut the
	// query short at 300ms.
	srvs[1].Close()
	ln, err := net.Listen("tcp", clients[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	start := time.Now()
	_, report, err := fleet.EstimateKeyPartial("freq", packet.CanonicalKey{1})
	if err != nil {
		t.Fatalf("partial query against tarpit: %v", err)
	}
	if el := time.Since(start); el > 1500*time.Millisecond {
		t.Fatalf("fleet deadline not applied: query took %v", el)
	}
	if !report.Partial() || len(report.Contributed) != 1 {
		t.Fatalf("report = %+v", report)
	}
	_ = ctrls
}

func TestFleetDeployRollsBackOnUnreachableDaemon(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients, srvs, _ := resilientDaemons(t, 3, cfg)
	fleet := NewRemoteFleet(clients, cfg)
	srvs[2].Close()
	if err := fleet.Deploy(cmsSpec("freq")); err == nil {
		t.Fatal("deploy with a dead daemon must fail (deploys are all-or-nothing)")
	}
	for i := 0; i < 2; i++ {
		if len(ctrls[i].Tasks()) != 0 {
			t.Fatalf("daemon %d kept tasks after rolled-back deploy", i)
		}
	}
	// The name is free for a later retry once the fleet is whole.
	h := fleet.Health()
	if h[2].State == SwitchHealthy {
		t.Fatal("dead daemon must not be reported healthy")
	}
}
