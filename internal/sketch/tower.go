package sketch

import (
	"fmt"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// Tower is a TowerSketch (Yang et al., SketchINT): several counter arrays of
// increasing bit width and decreasing length under the same total memory.
// Small flows are resolved by the many narrow counters; a saturated narrow
// counter reads as +∞ so large flows fall through to the wide levels. The
// query is the minimum over non-saturated levels.
type Tower struct {
	spec   packet.KeySpec
	levels []towerLevel
	hash   *hashing.Family
}

type towerLevel struct {
	bits     uint // counter width in bits
	counters []uint32
	max      uint32 // saturation value (2^bits − 1)
}

// TowerLevelSpec describes one level: counter bit width and counter count.
type TowerLevelSpec struct {
	Bits     int
	Counters int
}

// NewTower builds a TowerSketch with the given levels, keyed by spec.
// Counter counts are rounded up to powers of two.
func NewTower(spec packet.KeySpec, levels []TowerLevelSpec) *Tower {
	if len(levels) == 0 {
		panic("sketch: tower needs at least one level")
	}
	t := &Tower{spec: spec, hash: hashing.NewFamily(len(levels), spec)}
	for _, l := range levels {
		if l.Bits <= 0 || l.Bits > 32 || l.Counters <= 0 {
			panic(fmt.Sprintf("sketch: invalid tower level %+v", l))
		}
		n := ceilPow2(l.Counters)
		t.levels = append(t.levels, towerLevel{
			bits:     uint(l.Bits),
			counters: make([]uint32, n),
			max:      uint32(1)<<uint(l.Bits) - 1,
		})
	}
	return t
}

// NewTowerForBytes builds the canonical 3-level tower (4-, 8-, 16-bit) that
// splits memBytes of memory evenly across levels.
func NewTowerForBytes(spec packet.KeySpec, memBytes int) *Tower {
	per := memBytes / 3
	if per < 4 {
		per = 4
	}
	return NewTower(spec, []TowerLevelSpec{
		{Bits: 4, Counters: per * 8 / 4},
		{Bits: 8, Counters: per},
		{Bits: 16, Counters: per / 2},
	})
}

// AddPacket increments p's flow in every level, saturating narrow counters.
func (t *Tower) AddPacket(p *packet.Packet) { t.Add(p, 1) }

// Add adds v to p's flow in every level (saturating per level width).
func (t *Tower) Add(p *packet.Packet, v uint32) {
	for j := range t.levels {
		l := &t.levels[j]
		idx := t.hash.Hash(j, p) & uint32(len(l.counters)-1)
		c := l.counters[idx] + v
		if c > l.max || c < l.counters[idx] {
			c = l.max
		}
		l.counters[idx] = c
	}
}

// Estimate returns the minimum over non-saturated levels; if every level is
// saturated it returns the widest level's saturation value.
func (t *Tower) Estimate(p *packet.Packet) uint32 {
	var k packet.CanonicalKey = t.spec.Extract(p)
	return t.EstimateKey(k)
}

// EstimateKey is Estimate for a canonical key.
func (t *Tower) EstimateKey(k packet.CanonicalKey) uint32 {
	best := ^uint32(0)
	sawLive := false
	var widestMax uint32
	for j := range t.levels {
		l := &t.levels[j]
		idx := t.hash.HashBytes(j, k[:]) & uint32(len(l.counters)-1)
		c := l.counters[idx]
		if l.max > widestMax {
			widestMax = l.max
		}
		if c >= l.max {
			continue // saturated: reads as +∞
		}
		sawLive = true
		if c < best {
			best = c
		}
	}
	if !sawLive {
		return widestMax
	}
	return best
}

// MemoryBytes returns the total counter memory (bit-packed accounting).
func (t *Tower) MemoryBytes() int {
	bits := 0
	for _, l := range t.levels {
		bits += int(l.bits) * len(l.counters)
	}
	return (bits + 7) / 8
}

// Reset zeroes all levels.
func (t *Tower) Reset() {
	for j := range t.levels {
		clear(t.levels[j].counters)
	}
}
