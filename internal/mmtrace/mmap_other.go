//go:build !unix

package mmtrace

import (
	"errors"
	"os"
)

// errNoMmap makes Open take the io.ReaderAt fallback on platforms without
// a memory-mapping shim.
var errNoMmap = errors.New("mmtrace: mmap not supported on this platform")

func mapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func unmapFile(data []byte) error { return nil }
