package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flymon/internal/controlplane"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sim"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

// Fig12a reproduces Figure 12a: server-side throughput under nine
// reconfiguration events for the bare data plane, FlyMon (runtime rules),
// and the static baseline (P4 reload). The table summarizes each line; the
// Series field carries the raw time series for plotting.
type Fig12aResult struct {
	Table  *Table
	Series map[string][]sim.Sample
}

// Fig12a runs the forwarding-impact experiment.
func Fig12a(seed int64) *Fig12aResult {
	cfg := sim.ForwardingConfig{Seed: seed}
	res := &Fig12aResult{Series: make(map[string][]sim.Sample)}
	t := &Table{
		Title:  "Fig. 12a — Impact of reconfiguration on traffic forwarding (9 events / 100 s)",
		Header: []string{"Deployment", "Mean Gbps", "Outage seconds (<10 Gbps)", "Events causing dips"},
	}
	for _, kind := range []sim.DeploymentKind{sim.Bare, sim.FlyMon, sim.Static} {
		series := sim.SimulateForwarding(kind, cfg)
		res.Series[kind.String()] = series
		outage := sim.OutageSeconds(series, 10)
		dips := 0
		if kind == sim.Static {
			// Deletion events are skipped by the paper's optimization.
			for _, ev := range eventsOf(cfg) {
				if ev.Kind != sim.EventRemoveTask {
					dips++
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			kind.String(), f2(sim.MeanGbps(series)), f2(outage), itoa(dips),
		})
	}
	t.Notes = append(t.Notes,
		"FlyMon and Bare are statistically identical: rule installation never touches forwarding",
		"Static interrupts traffic 4–8 s per critical event (P4 reload)")
	res.Table = t
	return res
}

func eventsOf(cfg sim.ForwardingConfig) []sim.Event {
	cfg.Defaults()
	return cfg.Events
}

// Fig12b reproduces Figure 12b: the ARE of a frequency task (task A)
// across 20 epochs while (i) a traffic spike runs from epoch 6 to 15,
// (ii) another task B is inserted at epoch 3 and removed at epoch 10 in
// the same CMU Group, and (iii) task A's memory is grown at epoch 6 and
// shrunk at epoch 16. The static baseline keeps its compile-time memory.
func Fig12b(scale Scale, seed int64) *Table {
	flows, packets := scale.workload()
	flows /= 2
	packets /= 2
	spikeFlows := flows * 3
	tr := trace.Generate(trace.Config{Flows: flows, Packets: packets, Seed: seed})
	tr.InjectSpike(spikeFlows, 3, 0.3, 0.75, seed+1) // epochs 6..15 of 20
	epochs := tr.Epochs(20)

	// Task A measures the SrcIP-MSB=0 half of the traffic; task B (added
	// and removed mid-experiment) measures the other half, so both can
	// share the group's CMUs without traffic intersection.
	filterA := packet.Filter{SrcPrefix: packet.Prefix{Value: 0, Bits: 1}}
	filterB := packet.Filter{SrcPrefix: packet.Prefix{Value: 0x80000000, Bits: 1}}

	smallBuckets := 2048
	bigBuckets := 16384

	ctrl := controlplane.NewController(controlplane.Config{Groups: 1, Buckets: 65536, BitWidth: 32})
	taskA, err := ctrl.AddTask(controlplane.TaskSpec{
		Name: "taskA", Filter: filterA, Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: smallBuckets, D: 3,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: fig12b task A: %v", err))
	}

	// Static baseline: same geometry, fixed at compile time.
	static := sketch.NewCMS(packet.KeyFiveTuple, 3, smallBuckets)

	t := &Table{
		Title:  "Fig. 12b — Task-A ARE across epochs under reconfiguration (spike epochs 6–15)",
		Header: []string{"Epoch", "Flows(A)", "FlyMon ARE", "Static ARE", "Event"},
	}

	var taskBID int
	for e, ep := range epochs {
		event := ""
		switch e {
		case 3:
			b, err := ctrl.AddTask(controlplane.TaskSpec{
				Name: "taskB", Filter: filterB, Key: packet.KeyDstIP,
				Attribute: controlplane.AttrFrequency, MemBuckets: smallBuckets, D: 3,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: fig12b task B: %v", err))
			}
			taskBID = b.ID
			event = "insert task B"
		case 6:
			if _, err := ctrl.ResizeTask(taskA.ID, bigBuckets); err != nil {
				panic(fmt.Sprintf("experiments: fig12b grow: %v", err))
			}
			event = "grow task A memory"
		case 10:
			if err := ctrl.RemoveTask(taskBID); err != nil {
				panic(fmt.Sprintf("experiments: fig12b remove B: %v", err))
			}
			event = "remove task B"
		case 16:
			if _, err := ctrl.ResizeTask(taskA.ID, smallBuckets); err != nil {
				panic(fmt.Sprintf("experiments: fig12b shrink: %v", err))
			}
			event = "shrink task A memory"
		}

		// Fresh measurement window. The epoch replays through the batch
		// fast path (one snapshot, one worker context); the baselines only
		// read their own state, so they can consume the epoch afterwards.
		_ = ctrl.ResetTaskCounters(taskA.ID)
		static.Reset()
		exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
		ctrl.ProcessBatch(ep.Packets)
		for i := range ep.Packets {
			p := &ep.Packets[i]
			if filterA.Matches(p) {
				static.AddPacket(p)
				exact.AddPacket(p)
			}
		}

		flyEst := make(map[packet.CanonicalKey]uint64, exact.Flows())
		statEst := make(map[packet.CanonicalKey]uint64, exact.Flows())
		for k := range exact.Counts() {
			v, err := ctrl.EstimateKey(taskA.ID, k)
			if err != nil {
				panic(fmt.Sprintf("experiments: fig12b estimate: %v", err))
			}
			flyEst[k] = uint64(v)
			statEst[k] = uint64(static.EstimateKey(k))
		}
		t.Rows = append(t.Rows, []string{
			itoa(e), itoa(exact.Flows()),
			f3(metrics.ARE(exact.Counts(), flyEst)),
			f3(metrics.ARE(exact.Counts(), statEst)),
			event,
		})
	}
	t.Notes = append(t.Notes,
		"task insertion/removal in the same CMU Group leaves task A's accuracy untouched",
		"FlyMon's on-the-fly memory growth absorbs the spike; the static deployment's error explodes")
	return t
}

// WriteSeries dumps the Fig. 12a throughput time series as
// whitespace-separated .dat files (one per deployment kind) in dir, ready
// for gnuplot/matplotlib regeneration of the figure.
func (r *Fig12aResult) WriteSeries(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	for kind, series := range r.Series {
		var b strings.Builder
		b.WriteString("# seconds gbps\n")
		for _, s := range series {
			fmt.Fprintf(&b, "%.2f %.3f\n", s.AtSecond, s.Gbps)
		}
		path := filepath.Join(dir, "fig12a_"+strings.ToLower(kind)+".dat")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", path, err)
		}
	}
	return nil
}
