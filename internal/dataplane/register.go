package dataplane

import (
	"fmt"
	"sync/atomic"
)

// StatefulOp identifies one of the register actions a SALU can preload.
// FlyMon's reduced operation set (§3.1.2, Appendix A) needs only three,
// leaving one of the four hardware slots free for extensions (e.g. an XOR
// op for Odd Sketch, §6).
type StatefulOp uint8

const (
	// OpNone performs no update and returns 0.
	OpNone StatefulOp = iota
	// OpCondAdd adds p1 to the bucket if bucket < p2, returning the updated
	// value, else returns 0 (Appendix A, Operation 1). With p2 = MaxUint32
	// it degenerates to the unconditional ADD that CMS/MRAC need.
	OpCondAdd
	// OpMax sets the bucket to p1 if bucket < p1, returning the updated
	// value, else returns 0 (Appendix A, Operation 2).
	OpMax
	// OpAndOr performs bucket &= p1 when p2 == 0, else bucket |= p1,
	// returning the updated bucket (Appendix A, Operation 3).
	OpAndOr
	// OpXor toggles bucket bits: bucket ^= p1, returning the updated
	// bucket. This is the paper's reserved-slot extension (§6): with the
	// fourth SALU action slot, FlyMon can host Odd Sketch for traffic-set
	// similarity.
	OpXor
)

// String implements fmt.Stringer.
func (op StatefulOp) String() string {
	switch op {
	case OpNone:
		return "None"
	case OpCondAdd:
		return "Cond-ADD"
	case OpMax:
		return "MAX"
	case OpAndOr:
		return "AND-OR"
	case OpXor:
		return "XOR"
	default:
		return fmt.Sprintf("StatefulOp(%d)", uint8(op))
	}
}

// ReducedOperationSet is the set of stateful operations FlyMon preloads on
// every CMU register (§3.1.2); the fourth SALU slot stays free.
var ReducedOperationSet = []StatefulOp{OpCondAdd, OpMax, OpAndOr}

// ExtendedOperationSet adds the reserved-slot XOR extension (§6),
// exhausting the SALU's four action slots.
var ExtendedOperationSet = []StatefulOp{OpCondAdd, OpMax, OpAndOr, OpXor}

// Register models a SALU bound to a fixed-size stateful memory. The bucket
// count and bit width are fixed at compile time (they cannot change at
// runtime — the constraint that motivates FlyMon's address translation);
// the executed action is selected per packet.
//
// The register enforces the single-access-per-packet constraint indirectly:
// each stateful op touches exactly one bucket, and the CMU layer never
// issues two ops for one packet.
//
// Two update variants are offered, mirroring the two packet paths above:
//
//   - ApplySeq/Execute: plain read-modify-write for a single writer — the
//     interpretive pipeline path and single-threaded replays. Fastest; must
//     not run concurrently with anything else touching the register.
//   - Apply: a CAS loop per stateful op, safe for concurrent writers —
//     the snapshot fast path, modeling the independent pipes of a real
//     switch where each pipe's SALU performs its read-modify-write in one
//     hardware clock. Per-bucket updates are linearizable, but no atomicity
//     is promised across buckets (the d rows of a sketch may be observed
//     mid-update by a concurrent reader, exactly as on hardware).
//
// Read/ReadRange/ClearRange use atomic bucket access so control-plane
// readout can overlap the concurrent path.
type Register struct {
	buckets  []uint32
	bitWidth int
	mask     uint32
	accesses uint64
}

// NewRegister allocates a register with the given bucket count (rounded up
// to a power of two, as hardware memories are) and bucket bit width (at
// most 32).
func NewRegister(buckets, bitWidth int) *Register {
	if bitWidth <= 0 || bitWidth > 32 {
		panic(fmt.Sprintf("dataplane: register bit width %d out of range (0,32]", bitWidth))
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	var mask uint32 = ^uint32(0)
	if bitWidth < 32 {
		mask = 1<<uint(bitWidth) - 1
	}
	return &Register{buckets: make([]uint32, n), bitWidth: bitWidth, mask: mask}
}

// Size returns the bucket count.
func (r *Register) Size() int { return len(r.buckets) }

// BitWidth returns the configured bucket width in bits.
func (r *Register) BitWidth() int { return r.bitWidth }

// MemoryBytes returns the stateful memory footprint (bit-packed).
func (r *Register) MemoryBytes() int { return len(r.buckets) * r.bitWidth / 8 }

// SRAMBlocks returns the SRAM blocks this register occupies.
func (r *Register) SRAMBlocks() int { return SRAMBlocksFor(len(r.buckets), r.bitWidth) }

// Accesses returns the number of single-writer update calls served
// (Execute/ApplySeq; test/diagnostic). The concurrent Apply path does not
// count: a second interlocked operation per update would double the cost
// of the packet hot path for a number the atomic pipeline packet counters
// already provide in aggregate.
func (r *Register) Accesses() uint64 { return atomic.LoadUint64(&r.accesses) }

// Execute performs one stateful operation on bucket index with parameters
// p1, p2, returning the operation's result. The index is wrapped into the
// bucket range; values saturate at the bucket width. Single-writer only —
// see ApplySeq.
func (r *Register) Execute(op StatefulOp, index uint32, p1, p2 uint32) uint32 {
	result, _ := r.ApplySeq(op, index, p1, p2)
	return result
}

// ApplySeq performs one stateful operation with plain (non-atomic) bucket
// access, returning the result and the value read before updating. It is
// the single-writer fast path: correct and cheapest when exactly one
// goroutine updates the register, as on the interpretive pipeline path.
// Never mix concurrently with Apply or with control-plane readout.
func (r *Register) ApplySeq(op StatefulOp, index uint32, p1, p2 uint32) (result, old uint32) {
	r.accesses++
	i := index & uint32(len(r.buckets)-1)
	cur := r.buckets[i]
	switch op {
	case OpCondAdd:
		if cur >= (p2 & r.mask) {
			return 0, cur
		}
		next := cur + (p1 & r.mask)
		if next > r.mask || next < cur {
			next = r.mask
		}
		r.buckets[i] = next
		return next, cur
	case OpMax:
		v := p1 & r.mask
		if cur >= v {
			return 0, cur
		}
		r.buckets[i] = v
		return v, cur
	case OpAndOr:
		next := cur
		if p2 == 0 {
			next &= p1 & r.mask
		} else {
			next |= p1 & r.mask
		}
		r.buckets[i] = next
		return next, cur
	case OpXor:
		next := cur ^ (p1 & r.mask)
		r.buckets[i] = next
		return next, cur
	case OpNone:
		return 0, cur
	default:
		panic(fmt.Sprintf("dataplane: unknown stateful op %d", op))
	}
}

// Apply performs one stateful operation like ApplySeq but with a CAS loop
// per op, making it safe for concurrent writers. The (result, old) pair is
// consistent — it is the witnessed read-modify-write, even under
// concurrency, which is what DetectNew-style predicates depend on. Apply
// does not bump the Accesses counter (see Accesses).
func (r *Register) Apply(op StatefulOp, index uint32, p1, p2 uint32) (result, old uint32) {
	b := &r.buckets[index&uint32(len(r.buckets)-1)]
	switch op {
	case OpCondAdd:
		p1m, p2m := p1&r.mask, p2&r.mask
		for {
			cur := atomic.LoadUint32(b)
			if cur >= p2m {
				return 0, cur
			}
			next := cur + p1m
			if next > r.mask || next < cur {
				next = r.mask
			}
			if atomic.CompareAndSwapUint32(b, cur, next) {
				return next, cur
			}
		}
	case OpMax:
		v := p1 & r.mask
		for {
			cur := atomic.LoadUint32(b)
			if cur >= v {
				return 0, cur
			}
			if atomic.CompareAndSwapUint32(b, cur, v) {
				return v, cur
			}
		}
	case OpAndOr:
		for {
			cur := atomic.LoadUint32(b)
			next := cur
			if p2 == 0 {
				next &= p1 & r.mask
			} else {
				next |= p1 & r.mask
			}
			if atomic.CompareAndSwapUint32(b, cur, next) {
				return next, cur
			}
		}
	case OpXor:
		for {
			cur := atomic.LoadUint32(b)
			next := cur ^ (p1 & r.mask)
			if atomic.CompareAndSwapUint32(b, cur, next) {
				return next, cur
			}
		}
	case OpNone:
		return 0, atomic.LoadUint32(b)
	default:
		panic(fmt.Sprintf("dataplane: unknown stateful op %d", op))
	}
}

// Read returns bucket i without counting a data-plane access (control-plane
// register readout).
func (r *Register) Read(i uint32) uint32 {
	return atomic.LoadUint32(&r.buckets[i&uint32(len(r.buckets)-1)])
}

// ReadRange copies buckets [lo, lo+n) into a fresh slice (control-plane
// readout of one task's partition).
func (r *Register) ReadRange(lo, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = atomic.LoadUint32(&r.buckets[lo+i])
	}
	return out
}

// ClearRange zeroes buckets [lo, lo+n) — used when a partition is recycled
// for a new task.
func (r *Register) ClearRange(lo, n int) {
	for i := lo; i < lo+n; i++ {
		atomic.StoreUint32(&r.buckets[i], 0)
	}
}

// Reset zeroes the whole register.
func (r *Register) Reset() { r.ClearRange(0, len(r.buckets)) }
