// Package hashing models the hash resources of an RMT switch: a family of
// independent hash calculation units (CRC32 with distinct polynomials, as on
// Tofino) whose inputs can be re-masked at runtime ("dynamic hashing",
// tna_dyn_hashing in SDE ≥ 9.7), plus the key-combination tricks FlyMon
// layers on top — XOR of two compressed keys and sub-part bit-range
// selection to emulate independent hash functions from one compressed key.
package hashing

import (
	"fmt"
	"hash/crc32"

	"flymon/internal/packet"
)

// Polynomials for independent CRC32 hash units. Tofino exposes a small set
// of CRC polynomials per hash calculation unit; using distinct reversed
// polynomials gives practically independent 32-bit digests.
var polynomials = []uint32{
	crc32.IEEE,       // 0xEDB88320
	crc32.Castagnoli, // 0x82F63B78
	crc32.Koopman,    // 0xEB31D82E
	0xD419CC15,       // CRC-32Q (reversed)
	0x992C1A4C,       // CRC-32/AUTOSAR family member (reversed 0x32583499)
	0xB798B438,       // CRC-32/XFER family variant
	0xA833982B,       // CRC-32D (reversed)
	0x8F6E37A0,       // CRC-32/CD-ROM-EDC variant
}

// MaxUnits is the number of distinct hash polynomials available.
func MaxUnits() int { return len(polynomials) }

// Unit is one hash calculation/distribution unit. Its polynomial is fixed
// at "compile time" (construction); its input mask — which candidate-key
// fields, and which bits of each, participate — is reconfigurable at
// runtime, modelling the dynamic hashing feature the paper relies on.
type Unit struct {
	index int
	table *Table8
	mask  [packet.NumFields]uint32
	live  bool
}

// NewUnit creates hash unit i (0 ≤ i < MaxUnits). Units with distinct
// indices use distinct polynomials and behave as independent hash functions.
func NewUnit(i int) *Unit {
	if i < 0 || i >= len(polynomials) {
		panic(fmt.Sprintf("hashing: unit index %d out of range [0,%d)", i, len(polynomials)))
	}
	return &Unit{index: i, table: tableFor(i)}
}

// Index returns the unit's hardware index.
func (u *Unit) Index() int { return u.index }

// Configure installs a hash-mask rule: from now on the unit digests the
// candidate key set under the given KeySpec. This is the runtime operation
// the control plane performs when a new compressed key is needed; it does
// not disturb traffic.
func (u *Unit) Configure(spec packet.KeySpec) {
	u.mask = spec.FieldMask()
	u.live = len(spec.Parts) > 0
}

// ConfigureMask installs a raw per-field mask (the wire form of a hash-mask
// rule).
func (u *Unit) ConfigureMask(mask [packet.NumFields]uint32) {
	u.mask = mask
	u.live = false
	for _, m := range mask {
		if m != 0 {
			u.live = true
			break
		}
	}
}

// Live reports whether the unit currently has a non-empty mask installed.
func (u *Unit) Live() bool { return u.live }

// Mask returns the currently installed per-field mask.
func (u *Unit) Mask() [packet.NumFields]uint32 { return u.mask }

// Hash digests packet p's candidate key set under the installed mask,
// producing the unit's compressed key. An unconfigured unit returns 0.
// The digest runs over the fixed-size canonical key on the caller's stack
// (slicing-by-8, no allocation).
func (u *Unit) Hash(p *packet.Packet) uint32 {
	if !u.live {
		return 0
	}
	k := packet.ExtractMasked(p, u.mask)
	return fmix32(u.table.ChecksumKey(&k))
}

// HashBytes digests an arbitrary canonical key. Exposed for baselines and
// tests that bypass the packet model.
func (u *Unit) HashBytes(b []byte) uint32 {
	return fmix32(u.table.Checksum(b))
}

// Hasher is an immutable handle on a unit's polynomial: it captures the
// CRC table (fixed at construction, like the hardware polynomial) but not
// the unit's reconfigurable mask. Compiled data-plane snapshots hold
// Hashers so concurrent packet processing never reads a unit's mutable
// mask state while the control plane reconfigures it.
type Hasher struct {
	table *Table8
}

// Hasher returns the unit's immutable polynomial handle.
func (u *Unit) Hasher() Hasher { return Hasher{table: u.table} }

// Sum digests a pre-masked canonical key, producing the same compressed
// key Unit.Hash would for a packet extracted under the unit's mask. The
// key stays on the caller's stack: Sum is the snapshot fast path's digest
// and must not allocate.
func (h Hasher) Sum(k packet.CanonicalKey) uint32 {
	return fmix32(h.table.ChecksumKey(&k))
}

// SumKey is Sum over a caller-owned key, skipping the by-value copy — the
// batch digest kernel hashes whole spans of pre-extracted keys in place.
func (h Hasher) SumKey(k *packet.CanonicalKey) uint32 {
	return fmix32(h.table.ChecksumKey(k))
}

// fmix32 is a 32-bit avalanche finalizer (MurmurHash3's), modeling the bit
// scrambling of the hash distribution unit's output crossbar. Raw CRC32 is
// GF(2)-linear, so low-entropy structured inputs (sequential ports,
// adjacent addresses) would project onto degenerate sub-lattices in any
// fixed bit window; the finalizer restores the uniformity the sketches —
// and the paper's coupon draws — assume.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85EBCA6B
	h ^= h >> 13
	h *= 0xC2B2AE35
	h ^= h >> 16
	return h
}

// SubKey extracts bits [lo, lo+width) of a 32-bit compressed key. FlyMon
// lets the CMUs of a group select different sub-parts of one compressed key
// to simulate independent hash calculations (§3.2, inspired by SketchLib).
// Width must be in (0, 32]; bits beyond position 31 wrap from the top.
func SubKey(key uint32, lo, width int) uint32 {
	if width <= 0 || width > 32 {
		panic(fmt.Sprintf("hashing: invalid subkey width %d", width))
	}
	lo %= 32
	if lo < 0 {
		lo += 32
	}
	rot := key
	if lo != 0 {
		rot = key>>uint(lo) | key<<uint(32-lo)
	}
	if width == 32 {
		return rot
	}
	return rot & ((1 << uint(width)) - 1)
}

// Combine XORs two compressed keys, the paper's trick to derive a composite
// key (e.g. C(SrcIP) ⊕ C(DstIP) for IP-pair) without another hash unit.
func Combine(a, b uint32) uint32 { return a ^ b }

// Family is a convenience bundle of n independent units sharing one key
// spec, used by the standalone sketch baselines (d rows of a CMS, the k
// probes of a Bloom filter, ...).
type Family struct {
	units []*Unit
}

// NewFamily builds n independent hash units, all configured for spec.
func NewFamily(n int, spec packet.KeySpec) *Family {
	if n > len(polynomials) {
		panic(fmt.Sprintf("hashing: family size %d exceeds %d available polynomials", n, len(polynomials)))
	}
	f := &Family{units: make([]*Unit, n)}
	for i := range f.units {
		f.units[i] = NewUnit(i)
		f.units[i].Configure(spec)
	}
	return f
}

// Size returns the number of units in the family.
func (f *Family) Size() int { return len(f.units) }

// Hash returns unit i's digest of packet p.
func (f *Family) Hash(i int, p *packet.Packet) uint32 { return f.units[i].Hash(p) }

// HashBytes returns unit i's digest of raw bytes b.
func (f *Family) HashBytes(i int, b []byte) uint32 { return f.units[i].HashBytes(b) }
