package algorithms

import (
	"fmt"
	"math"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

// BloomTask is a FlyMon Bloom filter: d CMUs running AND-OR's OR branch.
//
// With Packed (the §4 optimization evaluated in Fig. 14g), the key locates
// a bucket while p1 — a second sub-part of the compressed key — selects one
// bit inside the bucket via the preparation stage's one-hot mapping, so all
// bucket bits are usable. Without Packed, each bucket stores a single
// membership bit in its LSB, wasting the rest of the uniform bucket width.
type BloomTask struct {
	Group  *core.Group
	TaskID int
	Unit   int
	Base   int // first CMU index
	D      int
	Rows   []core.MemRange
	Method core.TranslationMethod
	Packed bool
	width  int
}

// InstallBloom installs a FlyMon Bloom filter on group g over `key`. The
// optional trailing argument is the first CMU index.
func InstallBloom(g *core.Group, taskID int, filter packet.Filter, key packet.KeySpec,
	d int, packed bool, rows []core.MemRange, at ...int) (*BloomTask, error) {
	base := baseCMU(at)
	if d < 1 || d > g.CMUs() {
		return nil, fmt.Errorf("algorithms: Bloom depth %d exceeds group's %d CMUs", d, g.CMUs())
	}
	rows, err := checkRows(g, rows, base, d)
	if err != nil {
		return nil, err
	}
	unit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	width := g.CMU(base).Register().BitWidth()
	t := &BloomTask{Group: g, TaskID: taskID, Unit: unit, Base: base, D: d, Rows: rows,
		Method: core.TCAMBased, Packed: packed, width: width}
	for i := 0; i < d; i++ {
		rule := &core.Rule{
			TaskID:      taskID,
			Filter:      filter,
			Key:         rowSelector(unit, base+i),
			P1:          core.Const(1),
			P2:          core.Const(1), // AND-OR: p2 ≠ 0 selects the OR branch
			Mem:         rows[i],
			Translation: t.Method,
			Op:          dataplane.OpAndOr,
		}
		if packed {
			// p1 = a different sub-part of the compressed key; the
			// preparation stage one-hot encodes it into a bucket bit.
			rule.P1 = core.CompressedKey(t.bitSelector(base + i))
			rule.Prep = core.Transform{Kind: core.TransformBitSelect, Width: width}
		}
		if err := g.CMU(base + i).InstallRule(rule); err != nil {
			t.Uninstall()
			return nil, err
		}
	}
	return t, nil
}

// bitSelector picks the compressed-key sub-part used for bit selection in
// row i: offset half a word away from the indexing sub-part.
func (t *BloomTask) bitSelector(row int) core.Selector {
	return core.FullKey(t.Unit).SubRange(rowRotation*row+16, 32)
}

// ContainsKey reports whether canonical key k is (possibly falsely) in the
// filter, by control-plane readout.
func (t *BloomTask) ContainsKey(k packet.CanonicalKey) bool {
	keys := make([]uint32, t.Group.Units())
	keys[t.Unit] = t.Group.HashKey(t.Unit, k)
	for i := 0; i < t.D; i++ {
		idx := core.Translate(rowSelector(t.Unit, t.Base+i).Resolve(keys), t.Rows[i], t.Method)
		bucket := t.Group.CMU(t.Base + i).Register().Read(idx)
		if t.Packed {
			bit := uint32(1) << (t.bitSelector(t.Base+i).Resolve(keys) % uint32(t.width))
			if bucket&bit == 0 {
				return false
			}
		} else if bucket&1 == 0 {
			return false
		}
	}
	return true
}

// EffectiveBits returns the membership bits the task actually uses: all
// bucket bits when packed, one per bucket otherwise.
func (t *BloomTask) EffectiveBits() int {
	total := 0
	for _, r := range t.Rows {
		if t.Packed {
			total += r.Buckets * t.width
		} else {
			total += r.Buckets
		}
	}
	return total
}

// MemoryBytes returns the register memory the task occupies (the full
// uniform-width buckets either way — that is the point of Fig. 14g).
func (t *BloomTask) MemoryBytes() int {
	total := 0
	for _, r := range t.Rows {
		total += r.Buckets * t.width / 8
	}
	return total
}

// Uninstall removes the task's rules.
func (t *BloomTask) Uninstall() {
	for i := 0; i < t.Group.CMUs(); i++ {
		t.Group.CMU(i).RemoveRule(t.TaskID)
	}
}

// LinearCountingTask is FlyMon-LinearCounting: data-plane-identical to a
// packed d=1 FlyMon Bloom filter; the control plane estimates cardinality
// from the zero-bit fraction (Appendix D).
type LinearCountingTask struct {
	*BloomTask
}

// InstallLinearCounting installs a FlyMon-LinearCounting task on group g.
// The optional trailing argument selects the CMU.
func InstallLinearCounting(g *core.Group, taskID int, filter packet.Filter,
	key packet.KeySpec, rows []core.MemRange, at ...int) (*LinearCountingTask, error) {
	t, err := InstallBloom(g, taskID, filter, key, 1, true, rows, at...)
	if err != nil {
		return nil, err
	}
	return &LinearCountingTask{BloomTask: t}, nil
}

// Estimate returns the Linear Counting cardinality estimate
// n̂ = −m·ln(zeros/m) over the task's bit array.
func (t *LinearCountingTask) Estimate() (float64, error) {
	buckets, err := t.Group.CMU(t.Base).ReadTask(t.TaskID)
	if err != nil {
		return 0, err
	}
	m := len(buckets) * t.width
	zeros := 0
	for _, b := range buckets {
		for bit := 0; bit < t.width; bit++ {
			if b&(1<<uint(bit)) == 0 {
				zeros++
			}
		}
	}
	if zeros == 0 {
		mf := float64(m)
		return mf * math.Log(mf), nil
	}
	return -float64(m) * math.Log(float64(zeros)/float64(m)), nil
}

// ProbeKey returns, per row, the register index and the bit mask the
// filter tests for canonical key k — the readout primitive network-wide
// (merged) membership checks build on.
func (t *BloomTask) ProbeKey(k packet.CanonicalKey) (indices, masks []uint32) {
	keys := make([]uint32, t.Group.Units())
	keys[t.Unit] = t.Group.HashKey(t.Unit, k)
	indices = make([]uint32, t.D)
	masks = make([]uint32, t.D)
	for i := 0; i < t.D; i++ {
		indices[i] = core.Translate(rowSelector(t.Unit, t.Base+i).Resolve(keys), t.Rows[i], t.Method)
		if t.Packed {
			masks[i] = 1 << (t.bitSelector(t.Base+i).Resolve(keys) % uint32(t.width))
		} else {
			masks[i] = 1
		}
	}
	return indices, masks
}
