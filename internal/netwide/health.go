package netwide

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flymon/internal/telemetry"
)

// SwitchState classifies a remote switch's control-channel reachability.
type SwitchState int

const (
	// SwitchHealthy: the last operation succeeded.
	SwitchHealthy SwitchState = iota
	// SwitchDegraded: recent failures, but fewer than the down threshold —
	// the switch may be flapping or slow.
	SwitchDegraded
	// SwitchDown: at or past the consecutive-failure threshold; queries
	// should expect this switch to be missing from merges.
	SwitchDown
)

func (s SwitchState) String() string {
	switch s {
	case SwitchHealthy:
		return "healthy"
	case SwitchDegraded:
		return "degraded"
	case SwitchDown:
		return "down"
	default:
		return fmt.Sprintf("SwitchState(%d)", int(s))
	}
}

// SwitchHealth is one switch's control-channel health snapshot. When a
// liveness session is attached (Session != SessionNone) the session is the
// primary health signal: a session that is not reported-Up forces
// SwitchDown regardless of op outcomes, and op failures on an Up session
// degrade at most to SwitchDegraded.
type SwitchHealth struct {
	Index               int
	Addr                string
	State               SwitchState
	ConsecutiveFailures int
	TotalFailures       int
	LastError           string
	LastSuccess         time.Time
	LastFailure         time.Time

	// Liveness-session view (zero values when sessions are not running).
	Session        SessionState
	SessionUp      bool // reported-Up: session Up and not flap-damped
	Damped         bool
	SessionFails   int // consecutive hello failures
	Incarnation    int64
	DetectTime     time.Duration
	LastTransition time.Time

	// Reconciler view: how many tasks this switch should hold vs what its
	// last observed task list showed (-1 = not yet observed).
	TasksDesired  int
	TasksObserved int
}

// healthTracker aggregates per-switch operation outcomes. A switch is
// degraded after its first consecutive failure and down after downAfter of
// them; any success resets it to healthy.
type healthTracker struct {
	mu        sync.Mutex
	downAfter int
	now       func() time.Time
	entries   []SwitchHealth
	// tele, when set, counts state *transitions* (not per-op outcomes):
	// a switch flapping healthy↔down shows up as a high transition rate.
	tele *telemetry.FleetStats
}

func newHealthTracker(n, downAfter int, addrs []string) *healthTracker {
	t := &healthTracker{downAfter: downAfter, now: time.Now, entries: make([]SwitchHealth, n)}
	for i := range t.entries {
		t.entries[i].Index = i
		t.entries[i].TasksObserved = -1
		if i < len(addrs) {
			t.entries[i].Addr = addrs[i]
		}
	}
	return t
}

// classifyLocked recomputes entry e's state from its current signals and
// counts the transition. Liveness (when attached) is primary: session not
// reported-Up → Down; session Up caps op-failure damage at Degraded. With
// no session the original consecutive-failure rules apply unchanged.
func (t *healthTracker) classifyLocked(e *SwitchHealth) {
	was := e.State
	switch {
	case e.Session != SessionNone && !e.SessionUp:
		e.State = SwitchDown
	case e.ConsecutiveFailures == 0:
		e.State = SwitchHealthy
	case e.Session == SessionNone && e.ConsecutiveFailures >= t.downAfter:
		e.State = SwitchDown
	default:
		e.State = SwitchDegraded
	}
	if t.tele == nil || e.State == was {
		return
	}
	switch e.State {
	case SwitchHealthy:
		t.tele.ToHealthy.Add(1)
	case SwitchDegraded:
		t.tele.ToDegraded.Add(1)
	case SwitchDown:
		t.tele.ToDown.Add(1)
	}
}

// record folds one operation outcome into switch i's health.
func (t *healthTracker) record(i int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.entries) {
		return
	}
	e := &t.entries[i]
	if err == nil {
		e.ConsecutiveFailures = 0
		e.LastError = ""
		e.LastSuccess = t.now()
	} else {
		e.ConsecutiveFailures++
		e.TotalFailures++
		e.LastError = err.Error()
		e.LastFailure = t.now()
	}
	t.classifyLocked(e)
}

// setSession folds one liveness-session snapshot into switch i's health.
// A transition back to reported-Up wipes the op-failure residue
// (ConsecutiveFailures, LastError): the fleet readmits the switch with a
// clean slate rather than carrying stale errors from before the outage.
func (t *healthTracker) setSession(i int, snap SessionSnapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.entries) {
		return
	}
	e := &t.entries[i]
	wasUp := e.SessionUp
	e.Session = snap.State
	e.SessionUp = snap.ReportedUp
	e.Damped = snap.Damped
	e.SessionFails = snap.ConsecutiveFailures
	e.Incarnation = snap.Incarnation
	e.DetectTime = snap.DetectTime
	e.LastTransition = snap.LastTransition
	if !wasUp && snap.ReportedUp {
		e.ConsecutiveFailures = 0
		e.LastError = ""
	}
	t.classifyLocked(e)
}

// setTasks records the reconciler's latest desired-vs-observed task counts
// for switch i.
func (t *healthTracker) setTasks(i, desired, observed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.entries) {
		return
	}
	t.entries[i].TasksDesired = desired
	t.entries[i].TasksObserved = observed
}

// ejected reports whether switch i should be skipped by fan-outs without
// issuing an RPC, and why. Only a liveness verdict ejects pre-emptively —
// op-outcome health alone keeps trying (the op itself is the probe).
func (t *healthTracker) ejected(i int) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.entries) {
		return "", false
	}
	e := &t.entries[i]
	if e.Session == SessionNone || e.SessionUp {
		return "", false
	}
	if e.Damped {
		return fmt.Sprintf("liveness: session %s (flap-damped)", e.Session), true
	}
	return fmt.Sprintf("liveness: session %s", e.Session), true
}

// snapshot copies the health table.
func (t *healthTracker) snapshot() []SwitchHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SwitchHealth, len(t.entries))
	copy(out, t.entries)
	return out
}

// QueryReport annotates a fleet-wide result with which switches
// contributed. A partial report means the value is a merge over a subset
// of switches — for additive sketch merges that is a valid lower bound,
// which callers can surface instead of failing the whole query.
//
// Epoch-coherent queries additionally carry the epoch the merge was
// pinned to and the stragglers: switches that were reachable but had not
// completed that epoch, left out by the skip/partial straggler policy
// (an unreachable switch is a Failed entry, not a straggler).
type QueryReport struct {
	Contributed []int          // switch indices merged into the result
	Failed      map[int]string // switch index → error, for the rest
	Epoch       int            // epoch the merge was pinned to (0 = live query)
	Stragglers  map[int]int    // switch index → its epoch, for epoch-behind switches
}

// Partial reports whether any switch was left out of the merge.
func (r QueryReport) Partial() bool { return len(r.Failed)+len(r.Stragglers) > 0 }

// String renders "3/4 switches (down: 2)"-style summaries.
func (r QueryReport) String() string {
	total := len(r.Contributed) + len(r.Failed) + len(r.Stragglers)
	s := fmt.Sprintf("%d/%d switches", len(r.Contributed), total)
	if r.Epoch > 0 {
		s += fmt.Sprintf(" @ epoch %d", r.Epoch)
	}
	if len(r.Failed) > 0 {
		missing := make([]int, 0, len(r.Failed))
		for i := range r.Failed {
			missing = append(missing, i)
		}
		sort.Ints(missing)
		parts := make([]string, len(missing))
		for j, i := range missing {
			parts[j] = fmt.Sprintf("%d", i)
		}
		s += fmt.Sprintf(" (missing: %s)", strings.Join(parts, ","))
	}
	if len(r.Stragglers) > 0 {
		behind := make([]int, 0, len(r.Stragglers))
		for i := range r.Stragglers {
			behind = append(behind, i)
		}
		sort.Ints(behind)
		parts := make([]string, len(behind))
		for j, i := range behind {
			parts[j] = fmt.Sprintf("%d@%d", i, r.Stragglers[i])
		}
		s += fmt.Sprintf(" (behind: %s)", strings.Join(parts, ","))
	}
	return s
}

// PartialFailureError is a structured fleet-operation failure naming every
// switch that failed, so the caller can retry exactly the stragglers.
type PartialFailureError struct {
	Op     string
	Task   string
	Failed map[int]error // switch index → error
	Total  int           // fleet size
}

func (e *PartialFailureError) Error() string {
	idx := make([]int, 0, len(e.Failed))
	for i := range e.Failed {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	parts := make([]string, len(idx))
	for j, i := range idx {
		parts[j] = fmt.Sprintf("switch %d: %v", i, e.Failed[i])
	}
	return fmt.Sprintf("netwide: %s of %q failed on %d/%d switches: %s",
		e.Op, e.Task, len(e.Failed), e.Total, strings.Join(parts, "; "))
}

// Stragglers returns the failed switch indices in order.
func (e *PartialFailureError) Stragglers() []int {
	idx := make([]int, 0, len(e.Failed))
	for i := range e.Failed {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}
