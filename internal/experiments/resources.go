package experiments

import (
	"flymon/internal/core"
	"flymon/internal/dataplane"
)

// Fig2 reproduces Figure 2: the critical-resource footprint of four
// single-key sketches statically deployed the conventional way, and their
// coexistence (Sum) — the O(m·n) scaling argument motivating FlyMon.
func Fig2() *Table {
	cap_ := dataplane.PipelineCapacity(dataplane.NumStages)
	keyBits := 64 // SrcIP-DstIP pair, the paper's running example

	footprints := []struct {
		name string
		res  dataplane.Resources
	}{
		{"BloomFilter", dataplane.StaticFootprint(dataplane.KindBloomFilter, 3, 1<<16, keyBits)},
		{"CMS", dataplane.StaticFootprint(dataplane.KindCMS, 3, 1<<16, keyBits)},
		{"HLL", dataplane.StaticFootprint(dataplane.KindHLL, 1, 1<<12, keyBits)},
		{"MRAC", dataplane.StaticFootprint(dataplane.KindMRAC, 1, 1<<16, keyBits)},
	}
	var sum dataplane.Resources
	t := &Table{
		Title:  "Fig. 2 — Resource footprint of statically deployed sketches (fraction of pipeline)",
		Header: []string{"Sketch", "HashUnit", "LogicalTableID", "SALU", "StatefulMem"},
	}
	for _, f := range footprints {
		u := dataplane.UtilizationOf(f.res, cap_)
		t.Rows = append(t.Rows, []string{f.name, pct(u.HashUnits), pct(u.LogicalTables), pct(u.SALUs), pct(u.SRAMBlocks)})
		sum = sum.Add(f.res)
	}
	us := dataplane.UtilizationOf(sum, cap_)
	t.Rows = append(t.Rows, []string{"Sum", pct(us.HashUnits), pct(us.LogicalTables), pct(us.SALUs), pct(us.SRAMBlocks)})
	t.Notes = append(t.Notes,
		"static deployment hardwires one implementation per task; four coexisting keys already strain hash/SALU budgets (paper: cannot support more than four)")
	return t
}

// Fig11 reproduces Figure 11: the resource overhead of the two address
// translation mechanisms as the partition count grows.
func Fig11() *Table {
	t := &Table{
		Title:  "Fig. 11 — Address-translation overhead vs memory partitions",
		Header: []string{"Partitions", "TCAM usage (one CMU, one stage)", "PHV bits (shift-based)"},
	}
	for _, p := range []int{8, 16, 32, 64} {
		t.Rows = append(t.Rows, []string{
			itoa(p),
			pct(dataplane.TranslationTCAMUsage(p, 1)),
			itoa(dataplane.TranslationPHVBits(p)),
		})
	}
	t.Notes = append(t.Notes,
		"TCAM method: P·(P−1)+1 worst-case range entries per CMU against the stage's 12288 entries",
		"shift method: one pre-shifted 32-bit address per shift level in PHV (single-stage variant)")
	return t
}

// Fig13a reproduces Figure 13a: six resource types for Tofino's baseline
// switch project alone and with 1 or 3 CMU Groups integrated.
func Fig13a() *Table {
	cap_ := dataplane.PipelineCapacity(dataplane.NumStages)
	base := dataplane.BaselineSwitchProfile()
	group := core.NewGroup(core.GroupConfig{}).Footprint()

	row := func(name string, used dataplane.Resources) []string {
		u := dataplane.UtilizationOf(used, cap_)
		return []string{name, pct(u.HashUnits), pct(u.SALUs), pct(u.SRAMBlocks),
			pct(u.TCAMBlocks), pct(u.VLIWSlots), pct(u.LogicalTables)}
	}
	t := &Table{
		Title:  "Fig. 13a — Resource utilization: switch.p4 baseline + CMU Groups",
		Header: []string{"Config", "HashUnit", "SALU", "SRAM", "TCAM", "VLIW", "LogicalTable"},
	}
	t.Rows = append(t.Rows, row("switch.p4", base))
	t.Rows = append(t.Rows, row("switch.p4 +1 CMUG", base.Add(group)))
	t.Rows = append(t.Rows, row("switch.p4 +3 CMUG", base.Add(group.Scale(3))))

	u1 := dataplane.UtilizationOf(group, cap_)
	t.Notes = append(t.Notes,
		"per-group overhead: mean "+pct(u1.Mean())+", max "+pct(u1.Max())+" (paper: <8.3%, hash-bound)")
	return t
}

// Fig13b reproduces Figure 13b: hash and SALU utilization of the
// cross-stacked layout as the allocated stage count grows.
func Fig13b() *Table {
	t := &Table{
		Title:  "Fig. 13b — Cross-stacking resource utilization vs MAU stages",
		Header: []string{"Stages", "Groups", "CMUs", "Hash util", "SALU util"},
	}
	for _, stages := range []int{4, 6, 8, 10, 12} {
		l := core.PlanCrossStacked(stages)
		u := l.Utilization()
		t.Rows = append(t.Rows, []string{
			itoa(stages), itoa(l.Groups), itoa(l.Groups * core.CMUsPerGroup),
			pct(u.HashUnits), pct(u.SALUs),
		})
	}
	t.Notes = append(t.Notes,
		"12 stages → 9 groups (27 CMUs): hash 75%, SALU 56.25% — SALU under-use is the hash-distribution-unit addressing tax (§5.2)")
	return t
}

// Fig13c reproduces Figure 13c: deployable CMUs vs candidate key size,
// with and without the less-copy compression strategy.
func Fig13c() *Table {
	t := &Table{
		Title:  "Fig. 13c — Scalability to candidate key size (CMUs deployable)",
		Header: []string{"Key bits", "w/o compression", "w/ compression"},
	}
	for _, bits := range []int{32, 64, 104, 360} {
		t.Rows = append(t.Rows, []string{
			itoa(bits),
			itoa(core.MaxCMUsByPHV(bits, false)),
			itoa(core.MaxCMUsByPHV(bits, true)),
		})
	}
	t.Notes = append(t.Notes,
		"104 bits = 5-tuple; 360 bits adds IPv6 addresses — compression keeps the CMU count flat")
	return t
}
