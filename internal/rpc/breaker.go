package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) when the per-endpoint circuit
// breaker is open: the daemon has failed repeatedly and calls fail fast
// instead of each waiting out a full timeout. The breaker half-opens after
// the cooldown and lets one probe through.
var ErrCircuitOpen = errors.New("rpc: circuit open")

// BreakerState is the observable state of a client's circuit breaker.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// breaker is a classic closed→open→half-open circuit breaker counting
// consecutive transport failures. Application-level errors (the daemon
// answered, but with an error) never trip it.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to open
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time
	// onTransition, when set, observes every state *change* (called under
	// b.mu with the new state — keep it non-blocking). The telemetry layer
	// hangs its transition counters here.
	onTransition func(BreakerState)

	state    BreakerState
	failures int
	openedAt time.Time
	lastErr  error
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// setState moves the breaker to st, notifying the transition hook only on
// an actual change. Callers hold b.mu.
func (b *breaker) setState(st BreakerState) {
	if b.state == st {
		return
	}
	b.state = st
	if b.onTransition != nil {
		b.onTransition(st)
	}
}

// allow reports whether a call may proceed. In the open state it fails
// fast with ErrCircuitOpen (wrapping the error that opened the circuit);
// after the cooldown it transitions to half-open and admits one probe.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return nil
	default: // BreakerOpen
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.setState(BreakerHalfOpen)
			return nil
		}
		return fmt.Errorf("%w (endpoint failing since %d consecutive errors, last: %v)",
			ErrCircuitOpen, b.failures, b.lastErr)
	}
}

// success records a completed round trip and closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(BreakerClosed)
	b.failures = 0
	b.lastErr = nil
}

// failure records a transport failure; at threshold the circuit opens.
// A failed half-open probe re-opens immediately.
func (b *breaker) failure(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.lastErr = err
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.setState(BreakerOpen)
		b.openedAt = b.now()
	}
}

// snapshot returns the state and consecutive-failure count.
func (b *breaker) snapshot() (BreakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures
}
