package trace_test

// Cross-path conformance: the streaming trace.Reader and the mmap decoder
// (internal/mmtrace) must be interchangeable — bit-identical packets from
// the same bytes, and the same *trace.TruncatedError record index for the
// same damage. The tests live in an external package so they can hold both
// ends of the contract at once.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"flymon/internal/mmtrace"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// encodeTrace writes ps in the FLYMTRC format.
func encodeTrace(t testing.TB, ps []packet.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if err := w.WritePacket(&ps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readerPackets drains data through trace.Reader.ReadBatch, returning the
// decoded packets and the terminal error (io.EOF for a clean end).
func readerPackets(data []byte) ([]packet.Packet, error) {
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var out []packet.Packet
	buf := make([]packet.Packet, 37) // deliberately odd batch size
	for {
		n, err := r.ReadBatch(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return out, err
		}
	}
}

// mmapPackets decodes data through the mmtrace in-memory path (the same
// code the mmap path runs), returning packets and the terminal error.
func mmapPackets(data []byte) ([]packet.Packet, error) {
	t, err := mmtrace.NewFromBytes(data)
	if err != nil && t == nil {
		return nil, err
	}
	var out []packet.Packet
	buf := make([]packet.Packet, 37)
	for off := 0; ; {
		n, derr := t.DecodeBatch(off, buf)
		out = append(out, buf[:n]...)
		off += n
		if derr != nil || n < len(buf) {
			if derr == nil {
				derr = t.Err()
				if derr == nil {
					derr = io.EOF
				}
			}
			return out, derr
		}
	}
}

func TestTruncationConformance(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 8, Packets: 50, Seed: 31})
	full := encodeTrace(t, tr.Packets)

	// Every cut point: clean (record-aligned) and dirty (mid-record) ends,
	// including the degenerate header-only and cut-header cases.
	for cut := len(full); cut >= 0; cut-- {
		data := full[:cut]
		rp, rerr := readerPackets(data)
		mp, merr := mmapPackets(data)
		if cut < trace.HeaderSize {
			// Both constructors must reject a short header.
			if rerr == nil || merr == nil {
				t.Fatalf("cut=%d: short header accepted (reader=%v mmap=%v)", cut, rerr, merr)
			}
			continue
		}
		if len(rp) != len(mp) {
			t.Fatalf("cut=%d: reader decoded %d packets, mmap %d", cut, len(rp), len(mp))
		}
		for i := range rp {
			if rp[i] != mp[i] {
				t.Fatalf("cut=%d: packet %d differs between reader and mmap", cut, i)
			}
		}
		body := cut - trace.HeaderSize
		if body%trace.RecordSize == 0 {
			if rerr != io.EOF || merr != io.EOF {
				t.Fatalf("cut=%d: clean end must be io.EOF from both (reader=%v mmap=%v)", cut, rerr, merr)
			}
			continue
		}
		var rte, mte *trace.TruncatedError
		if !errors.As(rerr, &rte) || !errors.As(merr, &mte) {
			t.Fatalf("cut=%d: mid-record end must be TruncatedError from both (reader=%v mmap=%v)", cut, rerr, merr)
		}
		if !errors.Is(rerr, io.ErrUnexpectedEOF) || !errors.Is(merr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: truncation must match io.ErrUnexpectedEOF", cut)
		}
		if rte.Record != mte.Record {
			t.Fatalf("cut=%d: reader blames record %d, mmap blames record %d", cut, rte.Record, mte.Record)
		}
		if want := body / trace.RecordSize; rte.Record != want {
			t.Fatalf("cut=%d: blamed record %d, want %d", cut, rte.Record, want)
		}
	}
}

// FuzzFrameViewEquivalence fuzzes raw byte streams into both ingestion
// paths and requires identical packets, identical error classes, and —
// for the frames both accept — field-level agreement between the lazy
// FrameView accessors and the Reader's decoded packets.
func FuzzFrameViewEquivalence(f *testing.F) {
	tr := trace.Generate(trace.Config{Flows: 3, Packets: 5, Seed: 32})
	valid := encodeTrace(f, tr.Packets)
	f.Add(valid)
	f.Add(valid[:len(valid)-17])
	f.Add(valid[:trace.HeaderSize])
	f.Add([]byte("FLYMTRC\x01 garbage that is not a whole record"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rp, rerr := readerPackets(data)
		mp, merr := mmapPackets(data)
		if (rerr == nil) != (merr == nil) {
			t.Fatalf("acceptance differs: reader=%v mmap=%v", rerr, merr)
		}
		if rerr != nil && merr != nil && len(data) >= trace.HeaderSize {
			// Same class of failure: both clean EOF, or both truncated with
			// the same record index, or both bad-magic.
			switch {
			case rerr == io.EOF || merr == io.EOF:
				if rerr != merr {
					t.Fatalf("EOF class differs: reader=%v mmap=%v", rerr, merr)
				}
			case errors.Is(rerr, io.ErrUnexpectedEOF) || errors.Is(merr, io.ErrUnexpectedEOF):
				var rte, mte *trace.TruncatedError
				if !errors.As(rerr, &rte) || !errors.As(merr, &mte) || rte.Record != mte.Record {
					t.Fatalf("truncation differs: reader=%v mmap=%v", rerr, merr)
				}
			}
		}
		if len(rp) != len(mp) {
			t.Fatalf("reader decoded %d packets, mmap %d", len(rp), len(mp))
		}
		for i := range rp {
			if rp[i] != mp[i] {
				t.Fatalf("packet %d differs", i)
			}
		}
		// Lazy accessors agree with the eager decode, frame by frame.
		mt, err := mmtrace.NewFromBytes(data)
		if err != nil && mt == nil {
			return
		}
		for i := 0; i < mt.Frames() && i < len(rp); i++ {
			v := mt.At(i)
			p := rp[i]
			if v.SrcIP() != p.SrcIP || v.DstIP() != p.DstIP ||
				v.SrcPort() != p.SrcPort || v.DstPort() != p.DstPort ||
				v.Proto() != p.Proto || v.Size() != p.Size ||
				v.TimestampNs() != p.TimestampNs ||
				v.QueueLength() != p.QueueLength || v.QueueDelayNs() != p.QueueDelayNs {
				t.Fatalf("frame %d: lazy accessors disagree with Reader decode", i)
			}
			var q packet.Packet
			v.Decode(&q)
			if q != p {
				t.Fatalf("frame %d: FrameView.Decode disagrees with Reader decode", i)
			}
		}
	})
}
