package flymon

// Integration test: the paper's §1 operator story as one end-to-end run.
// A tenant reports degraded performance; the operator, over the control
// channel, walks through flow cardinality → DDoS-victim detection →
// heavy-hitter detection on the SAME pipeline, reconfiguring on the fly —
// the sequence of tasks the static approach cannot host simultaneously.
import (
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func TestOperatorTroubleshootingStory(t *testing.T) {
	// The switch: a full cross-stacked pipeline behind the RPC control
	// channel, exactly as flymond runs it.
	ctrl := controlplane.NewController(controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32})
	srv := rpc.NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The traffic: background flows plus a DDoS toward one victim and a
	// handful of elephants (the congestion culprits).
	tr := trace.Generate(trace.Config{Flows: 8000, Packets: 300_000, ZipfS: 1.3, Seed: 77})
	victim := packet.IPv4(198, 51, 100, 7)
	tr.InjectDDoS(victim, 2048, 2, 78)

	exactCard := sketch.NewExactCardinality(packet.KeyFiveTuple)
	exactDistinct := sketch.NewExactDistinct(packet.KeyDstIP, packet.KeySrcIP)
	exactFreq := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exactCard.AddPacket(&tr.Packets[i])
		exactDistinct.AddPacket(&tr.Packets[i])
		exactFreq.AddPacket(&tr.Packets[i])
	}

	replay := func() {
		for i := range tr.Packets {
			ctrl.Process(&tr.Packets[i])
		}
	}

	// --- Step 1: "is the flow count abnormal?" — cardinality task.
	card, err := client.AddTask(controlplane.TaskSpec{
		Name: "cardinality", Attribute: controlplane.AttrDistinct,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
		MemBuckets: 8192,
	})
	if err != nil {
		t.Fatalf("step 1 deploy: %v", err)
	}
	replay()
	got, err := client.Cardinality(card.ID)
	if err != nil {
		t.Fatal(err)
	}
	if re := metrics.RE(float64(exactCard.Cardinality()), got); re > 0.1 {
		t.Fatalf("step 1: cardinality RE %.3f (est %.0f, truth %d)", re, got, exactCard.Cardinality())
	}

	// --- Step 2: "is someone being DDoSed?" — switch the measurement, no
	// reload, cardinality task keeps running.
	const ddosThreshold = 512
	ddos, err := client.AddTask(controlplane.TaskSpec{
		Name: "ddos", Key: packet.KeyDstIP, Attribute: controlplane.AttrDistinct,
		Param:     controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeySrcIP},
		Threshold: ddosThreshold, MemBuckets: 16384, D: 3,
	})
	if err != nil {
		t.Fatalf("step 2 deploy: %v", err)
	}
	replay()
	cands := make([]packet.CanonicalKey, 0)
	for k := range exactDistinct.Counts() {
		cands = append(cands, k)
	}
	reported, err := client.Reported(ddos.ID, cands)
	if err != nil {
		t.Fatal(err)
	}
	vk := packet.KeyDstIP.Extract(&packet.Packet{DstIP: victim})
	found := false
	for _, k := range reported {
		if k == vk {
			found = true
		}
	}
	if !found {
		t.Fatalf("step 2: injected victim (%d sources) not reported among %d",
			exactDistinct.Count(vk), len(reported))
	}

	// --- Step 3: "which elephants congest the switch?" — heavy hitters,
	// then rebalance. Remove the DDoS task first (on the fly).
	if err := client.RemoveTask(ddos.ID); err != nil {
		t.Fatal(err)
	}
	const hhThreshold = 1024
	hh, err := client.AddTask(controlplane.TaskSpec{
		Name: "heavy-hitters", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, Threshold: hhThreshold,
		MemBuckets: 16384, D: 3,
	})
	if err != nil {
		t.Fatalf("step 3 deploy: %v", err)
	}
	replay()
	truth := exactFreq.HeavyHitters(hhThreshold)
	flowCands := make([]packet.CanonicalKey, 0, exactFreq.Flows())
	universe := make(map[packet.CanonicalKey]bool)
	for k := range exactFreq.Counts() {
		flowCands = append(flowCands, k)
		universe[k] = true
	}
	hhReported, err := client.Reported(hh.ID, flowCands)
	if err != nil {
		t.Fatal(err)
	}
	rep := make(map[packet.CanonicalKey]bool, len(hhReported))
	for _, k := range hhReported {
		rep[k] = true
	}
	if f1 := metrics.Classify(universe, truth, rep).F1(); f1 < 0.9 {
		t.Fatalf("step 3: heavy-hitter F1 %.3f", f1)
	}

	// --- Throughout: the cardinality task from step 1 was never touched.
	got2, err := client.Cardinality(card.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got2 < got {
		t.Fatal("step 1 task lost state while other tasks were reconfigured")
	}

	// The control plane saw every reconfiguration as rule installs only.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 2 { // cardinality + heavy hitters
		t.Fatalf("final task count = %d, want 2", stats.Tasks)
	}
}
