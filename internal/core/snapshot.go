package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"flymon/internal/hashing"
	"flymon/internal/packet"
	"flymon/internal/telemetry"
)

// Snapshot is an immutable compiled view of a pipeline's current runtime
// configuration — the RCU read side of FlyMon's on-the-fly reconfiguration.
// The control plane mutates the master Pipeline under its own lock, then
// Compiles a fresh Snapshot and publishes it through an atomic pointer;
// packet workers only ever load the pointer and execute against the frozen
// rule copies inside, so rule installs, freezes, and memory moves never
// stall traffic.
//
// Compilation flattens the configuration into dense per-CMU programs (see
// program.go) and optimizes the per-packet work:
//
//   - the masked canonical key is extracted once per distinct field mask
//     (units across groups usually share masks — every group's bootstrap
//     unit digests the 5-tuple),
//   - each distinct (mask, polynomial) digest is computed once and fanned
//     out: rule key selectors are rewritten to index the shared digest
//     cache directly, so no per-group key vector is ever copied,
//   - filters are specialized by shape (match-all / exact-field / prefix)
//     and address translation is folded to one shift or one mask,
//   - groups with zero enabled rules are dropped entirely, so their
//     compression stage costs nothing,
//   - disabled (frozen) rules are compiled out, including from the
//     spliced-group mirror decision.
//
// The result is a zero-allocation packet path: Snapshot.Process performs no
// heap allocation once a worker's ProcCtx scratch has grown to the
// snapshot's compiled sizes (enforced by alloc-regression tests).
//
// Register state is shared with the master pipeline by pointer: updates go
// through the registers' atomic CAS ops, and control-plane readouts observe
// them immediately.
type Snapshot struct {
	pl *Pipeline // counters (atomic) shared with the master pipeline

	groups  []snapGroup
	spliced []snapGroup
	// splicedMatch are the enabled spliced-group rule filters, compiled:
	// the mirror decision.
	splicedMatch []compiledMatch

	// masks are the distinct per-field masks live units digest; hashes the
	// distinct (mask, polynomial) digests. Entries below nMainMasks /
	// nMainHashes are needed by the first pass; the rest only by the
	// recirculated pass.
	masks       [][packet.NumFields]uint32
	hashes      []snapHash
	nMainMasks  int
	nMainHashes int

	// shardedRules / fallbackRules count the compile-time routing verdicts
	// (mergeable.go): how many enabled rules run on private lanes vs the
	// shared CAS path. Diagnostics for operators comparing modes.
	shardedRules  int
	fallbackRules int

	// frameVec marks the snapshot eligible for the stage-at-a-time
	// FrameView engine (frames.go): no live spliced groups (the mirror
	// decision and recirculated pass are packet-at-a-time) and no
	// probabilistically gated rules (the rng coin stream advances in strict
	// packet order; a vectorized pass would reorder the flips and diverge
	// from sequential replay). Ineligible snapshots still accept
	// ProcessFrames — it falls back to decoding each frame and running the
	// sequential path, so a mid-replay reconfiguration into an ineligible
	// configuration only changes speed, never results.
	frameVec bool

	// busQuiet records that no enabled rule anywhere in the snapshot reads
	// the cross-CMU result bus (same scan that authorizes sharding). The
	// frame engine then skips the witness scatter entirely — every
	// busRes/busOld/busMin/busNew write would be dead — and fastAdd rules
	// drop to the witness-free fetch-and-add register path.
	busQuiet bool

	// Telemetry wiring (telemetry.go), present only when the pipeline had a
	// registry attached at Compile time. telePkts/teleRec hold the packets
	// this snapshot processed that have not yet been settled into durable
	// counters; teleSlots are the live-counted rules (indexed by
	// compiledRule.teleSlot); teleMain/teleSpl list the derived rules whose
	// hits equal the (recirculated) packet count; teleDigMain/teleDigSpl
	// are the compile-time digests-per-packet multipliers.
	teleOn      bool
	teleReg     *telemetry.Registry
	telePkts    atomic.Uint64
	teleRec     atomic.Uint64
	teleSlots   []*telemetry.RuleCounter
	teleMain    []*telemetry.RuleCounter
	teleSpl     []*telemetry.RuleCounter
	teleDigMain int
	teleDigSpl  int
}

type snapHash struct {
	mask int // index into Snapshot.masks
	h    hashing.Hasher
}

// snapGroup holds the compiled programs of one live group's CMUs, in
// pipeline order. CMUs without enabled rules are compiled out.
type snapGroup struct {
	cmus []snapCMU
}

// snapCMU is one CMU's compiled rule program, in install (priority) order;
// the first matching rule wins, enforcing one access per packet.
type snapCMU struct {
	prog []compiledRule
}

// Compile freezes the pipeline's current configuration into a Snapshot.
// The caller must ensure no concurrent mutation of the pipeline's groups
// or rules during compilation (the controller compiles under its lock).
func (pl *Pipeline) Compile() *Snapshot {
	s := &Snapshot{pl: pl}
	maskIdx := make(map[[packet.NumFields]uint32]int)
	type hashKey struct {
		mask, poly int
	}
	hashIdx := make(map[hashKey]int)

	// Sharding is sound only while nothing can observe a lane-local result
	// bus: one enabled bus consumer anywhere (SuMax's min chain, Counter
	// Braids' PrevResult, max-interval's IntervalSub) pins the whole
	// snapshot to the shared CAS path.
	allowShard := true
	for _, g := range pl.allGroups() {
		for i := 0; i < g.CMUs(); i++ {
			for _, r := range g.CMU(i).Rules() {
				if !r.Disabled && busConsumer(r) {
					allowShard = false
				}
			}
		}
	}

	compile := func(gi int, g *Group, splicedGroup bool) (snapGroup, bool) {
		live := false
		for _, c := range g.cmus {
			for _, r := range c.rules {
				if !r.Disabled {
					live = true
					break
				}
			}
		}
		if !live {
			return snapGroup{}, false
		}
		// Claim digest slots for the group's live units, deduplicating
		// masks and (mask, polynomial) pairs across the whole snapshot.
		unitHash := make([]int, len(g.units))
		for ui, u := range g.units {
			if !u.Live() {
				unitHash[ui] = -1
				continue
			}
			mask := u.Mask()
			mi, ok := maskIdx[mask]
			if !ok {
				mi = len(s.masks)
				maskIdx[mask] = mi
				s.masks = append(s.masks, mask)
			}
			hk := hashKey{mask: mi, poly: u.Index()}
			hi, ok := hashIdx[hk]
			if !ok {
				hi = len(s.hashes)
				hashIdx[hk] = hi
				s.hashes = append(s.hashes, snapHash{mask: mi, h: u.Hasher()})
			}
			unitHash[ui] = hi
		}
		var sg snapGroup
		for ci, c := range g.cmus {
			var sc snapCMU
			for _, r := range c.rules {
				if r.Disabled {
					continue
				}
				cr := compileRule(r, c.register, unitHash, allowShard)
				if cr.sharded {
					s.shardedRules++
				} else {
					s.fallbackRules++
				}
				if pl.tele != nil {
					// First-match semantics make a match-all, unsampled rule
					// at program position 0 execute for every packet of its
					// pass: its hits are derived from the snapshot packet
					// counter instead of counted per execution. ci is the
					// CMU's real pipeline position — compiled-out CMUs must
					// not shift the telemetry coordinates.
					derived := len(sc.prog) == 0 && cr.match.kind == matchAll && !cr.probGated
					rc := pl.tele.Rule(
						telemetry.RuleKey{Group: gi, CMU: ci, Task: r.TaskID},
						telemetry.RuleMeta{
							Op:      r.Op.String(),
							Prep:    cr.hasPrep,
							Spliced: splicedGroup,
							Sharded: cr.sharded,
							Derived: derived,
						})
					switch {
					case !derived:
						cr.teleSlot = int32(len(s.teleSlots))
						s.teleSlots = append(s.teleSlots, rc)
					case splicedGroup:
						s.teleSpl = append(s.teleSpl, rc)
					default:
						s.teleMain = append(s.teleMain, rc)
					}
				}
				sc.prog = append(sc.prog, cr)
			}
			if len(sc.prog) > 0 {
				sg.cmus = append(sg.cmus, sc)
			}
		}
		return sg, true
	}

	for gi, g := range pl.groups {
		if sg, ok := compile(gi, g, false); ok {
			s.groups = append(s.groups, sg)
		}
	}
	s.nMainMasks, s.nMainHashes = len(s.masks), len(s.hashes)
	for si, g := range pl.spliced {
		sg, ok := compile(len(pl.groups)+si, g, true)
		if !ok {
			continue
		}
		s.spliced = append(s.spliced, sg)
		for ci := range sg.cmus {
			for ri := range sg.cmus[ci].prog {
				s.splicedMatch = append(s.splicedMatch, sg.cmus[ci].prog[ri].match)
			}
		}
	}
	if pl.tele != nil {
		s.teleOn = true
		s.teleReg = pl.tele
		s.teleDigMain = s.nMainHashes
		s.teleDigSpl = len(s.hashes) - s.nMainHashes
	}
	s.busQuiet = allowShard
	s.frameVec = len(s.spliced) == 0
	for gi := range s.groups {
		for ci := range s.groups[gi].cmus {
			for ri := range s.groups[gi].cmus[ci].prog {
				if s.groups[gi].cmus[ci].prog[ri].probGated {
					s.frameVec = false
				}
			}
		}
	}
	return s
}

// ShardedRules returns the compile-time routing verdict: how many enabled
// rules execute on private per-worker lanes vs the shared CAS path.
func (s *Snapshot) ShardedRules() (sharded, fallback int) {
	return s.shardedRules, s.fallbackRules
}

// Process pushes one packet through the compiled pipeline. Safe for
// concurrent callers as long as each carries its own ProcCtx. It performs
// no heap allocation once pc's scratch matches the snapshot's compiled
// sizes (the first call grows it).
func (s *Snapshot) Process(pc *ProcCtx, p *packet.Packet) {
	s.pl.packets.Add(1)
	if s.teleOn {
		pc.teleTick(s)
	}
	pc.reset(p)
	s.digest(pc, p, 0, s.nMainMasks, 0, s.nMainHashes)
	for gi := range s.groups {
		s.groups[gi].process(pc)
	}
	if len(s.splicedMatch) == 0 || !s.wants(p) {
		return
	}
	// The mirrored copy re-enters the pipeline: a fresh PHV.
	s.pl.recirculated.Add(1)
	if s.teleOn {
		pc.teleRecPend++
	}
	pc.reset(p)
	s.digest(pc, p, s.nMainMasks, len(s.masks), s.nMainHashes, len(s.hashes))
	for gi := range s.spliced {
		s.spliced[gi].process(pc)
	}
}

// digest fills the context's masked-key and hash caches for mask entries
// [m0, m1) and hash entries [h0, h1).
func (s *Snapshot) digest(pc *ProcCtx, p *packet.Packet, m0, m1, h0, h1 int) {
	if cap(pc.masked) < len(s.masks) {
		pc.masked = make([]packet.CanonicalKey, len(s.masks))
	}
	if cap(pc.hashes) < len(s.hashes) {
		pc.hashes = make([]uint32, len(s.hashes))
	}
	pc.masked = pc.masked[:len(s.masks)]
	pc.hashes = pc.hashes[:len(s.hashes)]
	for m := m0; m < m1; m++ {
		pc.masked[m] = packet.ExtractMasked(p, s.masks[m])
	}
	for hi := h0; hi < h1; hi++ {
		sh := &s.hashes[hi]
		pc.hashes[hi] = sh.h.Sum(pc.masked[sh.mask])
	}
}

// wants reports whether any enabled spliced-group task matches p.
func (s *Snapshot) wants(p *packet.Packet) bool {
	for i := range s.splicedMatch {
		if s.splicedMatch[i].matches(p) {
			return true
		}
	}
	return false
}

func (sg *snapGroup) process(pc *ProcCtx) {
	for ci := range sg.cmus {
		sg.cmus[ci].process(&pc.Ctx, pc.hashes)
	}
}

// process runs one CMU's compiled program: first-match task selection over
// the specialized matchers, then the flattened rule body. Rule key
// selectors index the shared digest cache directly.
func (sc *snapCMU) process(ctx *Context, hashes []uint32) {
	for i := range sc.prog {
		r := &sc.prog[i]
		if !r.match.matches(ctx.Pkt) {
			continue
		}
		if r.probGated && !ctx.coin(r.prob) {
			return // sampled out: the packet consumed its one access slot
		}
		r.exec(ctx, hashes)
		return // one task per packet per CMU
	}
}

// ProcessBatch pushes a packet slice through the snapshot sequentially
// with one worker context. A fresh context is used per call, so replays
// are deterministic.
func (s *Snapshot) ProcessBatch(ps []packet.Packet) {
	s.ProcessBatchCtx(NewProcCtx(), ps)
}

// ProcessBatchCtx is ProcessBatch with a caller-owned context — the
// allocation-free sequential path for callers that pool contexts across
// batches (the controller). For ProcessBatch's deterministic-replay
// contract the caller must Reseed a recycled context first; without the
// reseed the rng stream simply continues, which is what a pool that
// interleaves batches from many callers wants.
func (s *Snapshot) ProcessBatchCtx(pc *ProcCtx, ps []packet.Packet) {
	for i := range ps {
		s.Process(pc, &ps[i])
	}
	pc.teleFlush() // counts are scrape-exact at the batch boundary
}

// newParallelCtx builds the per-chunk worker contexts ProcessParallel
// spawns. It must hand out unique rng streams: chunk workers all starting
// from the fixed seed would flip identical coins, making probabilistic
// rules sample in lockstep across workers. A package variable so tests can
// observe the streams deterministically.
var newParallelCtx = NewProcCtxUnique

// ProcessParallel shards a packet batch across transient workers, each
// with its own ProcCtx, all executing against this one consistent
// snapshot. workers <= 1 degenerates to the sequential ProcessBatch (and
// is bit-for-bit identical to it); workers > 1 gives every worker a unique
// rng stream. Per-bucket updates are atomic; counts are exact because the
// stateful ops commute per bucket, but multi-bucket invariants may be
// observed mid-update by concurrent readers.
//
// This spawns goroutines per call; steady-state batch pipelines should
// prefer a persistent WorkerPool (the controller owns one).
func (s *Snapshot) ProcessParallel(ps []packet.Packet, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) {
		workers = len(ps)
	}
	if workers <= 1 {
		s.ProcessBatch(ps)
		return
	}
	chunk := (len(ps) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(ps); lo += chunk {
		hi := lo + chunk
		if hi > len(ps) {
			hi = len(ps)
		}
		wg.Add(1)
		go func(seg []packet.Packet) {
			defer wg.Done()
			pc := newParallelCtx()
			for i := range seg {
				s.Process(pc, &seg[i])
			}
			pc.teleFlush() // counts are durable before the batch returns
		}(ps[lo:hi])
	}
	wg.Wait()
}
