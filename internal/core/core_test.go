package core

import (
	"strings"
	"testing"
	"testing/quick"

	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

func TestSelectorResolve(t *testing.T) {
	keys := []uint32{0xAABBCCDD, 0x11223344, 0xFFFFFFFF}
	if got := FullKey(0).Resolve(keys); got != 0xAABBCCDD {
		t.Errorf("FullKey(0) = %#x", got)
	}
	if got := XorKey(0, 1).Resolve(keys); got != 0xAABBCCDD^0x11223344 {
		t.Errorf("XorKey = %#x", got)
	}
	if got := FullKey(0).SubRange(0, 8).Resolve(keys); got != 0xDD {
		t.Errorf("low byte = %#x", got)
	}
	if got := FullKey(0).SubRange(8, 8).Resolve(keys); got != 0xCC {
		t.Errorf("second byte = %#x", got)
	}
	// Rotation with full width is a pure rotation.
	if got := FullKey(0).SubRange(4, 32).Resolve(keys); got != 0xDAABBCCD {
		t.Errorf("rotate 4 = %#x", got)
	}
	// Out-of-range unit indices resolve to zero contribution.
	if got := FullKey(7).Resolve(keys); got != 0 {
		t.Errorf("missing unit = %#x", got)
	}
}

func TestSelectorSubRangeBoundProperty(t *testing.T) {
	f := func(key uint32, lo, width uint8) bool {
		w := int(width%31) + 1
		v := Selector{UnitA: 0, UnitB: -1, Lo: int(lo), Width: w}.Resolve([]uint32{key})
		return v < 1<<uint(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateStaysInPartitionProperty(t *testing.T) {
	f := func(addr uint32, baseSel, sizeSel uint8) bool {
		size := 1 << (sizeSel % 12) // 1..2048 buckets
		base := int(baseSel%16) * size
		mem := MemRange{Base: base, Buckets: size}
		for _, m := range []TranslationMethod{ShiftBased, TCAMBased} {
			idx := Translate(addr, mem, m)
			if idx < uint32(base) || idx >= uint32(base+size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateUniformity(t *testing.T) {
	// Sequential high-entropy addresses must spread across the partition
	// for both methods.
	mem := MemRange{Base: 64, Buckets: 64}
	for _, m := range []TranslationMethod{ShiftBased, TCAMBased} {
		hit := map[uint32]bool{}
		for i := 0; i < 4096; i++ {
			addr := uint32(i) * 2654435761
			hit[Translate(addr, mem, m)] = true
		}
		if len(hit) != 64 {
			t.Errorf("%s translation reached %d/64 buckets", m, len(hit))
		}
	}
}

func TestTranslateMethodsUseDifferentBits(t *testing.T) {
	mem := MemRange{Base: 0, Buckets: 256}
	// Shift uses high bits, TCAM low bits: an address with only high bits
	// set lands differently.
	addr := uint32(0xAB000000)
	if Translate(addr, mem, ShiftBased) != 0xAB {
		t.Errorf("shift-based should keep high bits: %d", Translate(addr, mem, ShiftBased))
	}
	if Translate(addr, mem, TCAMBased) != 0 {
		t.Errorf("TCAM-based should keep low bits: %d", Translate(addr, mem, TCAMBased))
	}
}

func TestMemRangeOverlap(t *testing.T) {
	a := MemRange{Base: 0, Buckets: 1024}
	b := MemRange{Base: 1024, Buckets: 1024}
	c := MemRange{Base: 512, Buckets: 1024}
	if a.Overlaps(b) {
		t.Error("adjacent ranges must not overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("straddling ranges must overlap, symmetrically")
	}
	if a.String() != "[0,1024)" {
		t.Errorf("range string = %q", a.String())
	}
}

func TestShiftTranslationStages(t *testing.T) {
	if ShiftTranslationStages(false) != 2 || ShiftTranslationStages(true) != 1 {
		t.Error("shift translation costs 2 stages, or 1 with precomputed offsets")
	}
}

func TestTCAMTranslationEntries(t *testing.T) {
	if TCAMTranslationEntries(1) != 0 || TCAMTranslationEntries(4) != 3 {
		t.Error("per-task entries: partitions − 1")
	}
	if PartitionsOf(65536, 2048) != 32 || PartitionsOf(65536, 0) != 0 {
		t.Error("PartitionsOf wrong")
	}
}

// --- CMU rule validation ---

func testRule(taskID int, mem MemRange) *Rule {
	return &Rule{
		TaskID: taskID,
		Filter: packet.MatchAll,
		Key:    FullKey(0),
		P1:     Const(1),
		P2:     MaxValue(),
		Mem:    mem,
		Op:     dataplane.OpCondAdd,
	}
}

func TestCMURejectsBadMemRanges(t *testing.T) {
	c := NewCMU(0, 1024, 32)
	cases := []struct {
		name string
		mem  MemRange
	}{
		{"beyond register", MemRange{Base: 512, Buckets: 1024}},
		{"non power of two", MemRange{Base: 0, Buckets: 300}},
		{"misaligned base", MemRange{Base: 256, Buckets: 512}},
		{"zero size", MemRange{Base: 0, Buckets: 0}},
	}
	for _, tc := range cases {
		if err := c.InstallRule(testRule(1, tc.mem)); err == nil {
			t.Errorf("%s: install must fail", tc.name)
		}
	}
}

func TestCMURejectsOverlapsAndIntersections(t *testing.T) {
	c := NewCMU(0, 1024, 32)
	r1 := testRule(1, MemRange{Base: 0, Buckets: 512})
	r1.Filter = packet.Filter{SrcPrefix: packet.Prefix{Value: packet.IPv4(10, 0, 0, 0), Bits: 8}}
	if err := c.InstallRule(r1); err != nil {
		t.Fatal(err)
	}
	// Duplicate task id.
	dup := testRule(1, MemRange{Base: 512, Buckets: 512})
	if err := c.InstallRule(dup); err == nil {
		t.Error("duplicate task id must fail")
	}
	// Overlapping memory (aligned, but straddles task 1's partition).
	mem := testRule(2, MemRange{Base: 0, Buckets: 1024})
	mem.Filter = packet.Filter{SrcPrefix: packet.Prefix{Value: packet.IPv4(20, 0, 0, 0), Bits: 8}}
	if err := c.InstallRule(mem); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("overlapping memory must fail, got %v", err)
	}
	// Intersecting filters (one access per packet, §3.3).
	isect := testRule(3, MemRange{Base: 512, Buckets: 256})
	isect.Filter = packet.Filter{SrcPrefix: packet.Prefix{Value: packet.IPv4(10, 1, 0, 0), Bits: 16}}
	if err := c.InstallRule(isect); err == nil || !strings.Contains(err.Error(), "one access per packet") {
		t.Errorf("intersecting filters must fail, got %v", err)
	}
	// Disjoint filter + disjoint memory is fine.
	ok := testRule(4, MemRange{Base: 512, Buckets: 256})
	ok.Filter = packet.Filter{SrcPrefix: packet.Prefix{Value: packet.IPv4(20, 0, 0, 0), Bits: 8}}
	if err := c.InstallRule(ok); err != nil {
		t.Errorf("disjoint task must install: %v", err)
	}
}

func TestCMUProbabilisticTasksMayShareTraffic(t *testing.T) {
	c := NewCMU(0, 1024, 32)
	r1 := testRule(1, MemRange{Base: 0, Buckets: 512})
	r1.Prob = 0.5
	r2 := testRule(2, MemRange{Base: 512, Buckets: 512})
	r2.Prob = 0.5
	if err := c.InstallRule(r1); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallRule(r2); err != nil {
		t.Fatalf("probabilistic tasks with intersecting filters must co-exist: %v", err)
	}
}

func TestCMURemoveRuleClearsPartition(t *testing.T) {
	c := NewCMU(0, 1024, 32)
	r := testRule(1, MemRange{Base: 256, Buckets: 256})
	if err := c.InstallRule(r); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Pkt: &packet.Packet{SrcIP: 1}, RunningMin: ^uint32(0)}
	c.Process(ctx, []uint32{0x12345678})
	if c.Register().Read(Translate(0x12345678, r.Mem, r.Translation)) == 0 {
		t.Fatal("processing must have written the partition")
	}
	if !c.RemoveRule(1) {
		t.Fatal("remove must succeed")
	}
	for i := 256; i < 512; i++ {
		if c.Register().Read(uint32(i)) != 0 {
			t.Fatal("remove must clear the partition")
		}
	}
	if c.RemoveRule(1) {
		t.Fatal("second remove must report false")
	}
	if len(c.Rules()) != 0 {
		t.Fatal("rules must be empty")
	}
}

func TestCMUFirstMatchWins(t *testing.T) {
	c := NewCMU(0, 1024, 32)
	specific := testRule(1, MemRange{Base: 0, Buckets: 512})
	specific.Filter = packet.Filter{DstPort: 80}
	if err := c.InstallRule(specific); err != nil {
		t.Fatal(err)
	}
	rest := testRule(2, MemRange{Base: 512, Buckets: 512})
	rest.Filter = packet.Filter{DstPort: 443}
	if err := c.InstallRule(rest); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Pkt: &packet.Packet{DstPort: 80}, RunningMin: ^uint32(0)}
	c.Process(ctx, []uint32{42})
	// Only task 1's partition should have been touched.
	data, err := c.ReadTask(1)
	if err != nil {
		t.Fatal(err)
	}
	sum := uint32(0)
	for _, v := range data {
		sum += v
	}
	if sum != 1 {
		t.Fatalf("task 1 partition sum = %d, want 1", sum)
	}
	data2, _ := c.ReadTask(2)
	for _, v := range data2 {
		if v != 0 {
			t.Fatal("task 2 must be untouched")
		}
	}
}

func TestContextCoinStatistics(t *testing.T) {
	ctx := &Context{rng: 12345}
	n, hits := 100_000, 0
	for i := 0; i < n; i++ {
		if ctx.coin(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.24 || frac > 0.26 {
		t.Fatalf("coin(0.25) hit rate %.4f", frac)
	}
	if !ctx.coin(1) || !ctx.coin(0) {
		t.Fatal("edge probabilities must always fire")
	}
}

// --- Group & pipeline ---

func TestGroupUnitManagement(t *testing.T) {
	g := NewGroup(GroupConfig{})
	if g.Units() != CompressionUnits || g.CMUs() != CMUsPerGroup {
		t.Fatalf("default geometry %d units / %d CMUs", g.Units(), g.CMUs())
	}
	if g.FindUnit(packet.KeySrcIP) != -1 {
		t.Fatal("fresh group must have no configured units")
	}
	free := g.FreeUnit()
	if free != 0 {
		t.Fatalf("first free unit = %d", free)
	}
	if err := g.ConfigureUnit(free, packet.KeySrcIP); err != nil {
		t.Fatal(err)
	}
	if g.FindUnit(packet.KeySrcIP) != 0 {
		t.Fatal("configured unit must be findable")
	}
	if g.FreeUnit() != 1 {
		t.Fatal("next free unit must advance")
	}
	if err := g.ConfigureUnit(99, packet.KeyDstIP); err == nil {
		t.Fatal("out-of-range unit must error")
	}
}

func TestGroupCompressedKeysMatchHashKey(t *testing.T) {
	g := NewGroup(GroupConfig{})
	_ = g.ConfigureUnit(0, packet.KeyFiveTuple)
	p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	keys := g.CompressedKeys(&p)
	k := packet.KeyFiveTuple.Extract(&p)
	if keys[0] != g.HashKey(0, k) {
		t.Fatal("per-packet compressed key must equal canonical-key digest")
	}
	if keys[1] != 0 || keys[2] != 0 {
		t.Fatal("idle units must produce zero keys")
	}
}

func TestGroupsProduceIndependentKeys(t *testing.T) {
	g0 := NewGroup(GroupConfig{ID: 0})
	g1 := NewGroup(GroupConfig{ID: 1})
	_ = g0.ConfigureUnit(0, packet.KeyFiveTuple)
	_ = g1.ConfigureUnit(0, packet.KeyFiveTuple)
	same := 0
	for i := 0; i < 1000; i++ {
		p := packet.Packet{SrcIP: uint32(i), Proto: 6}
		if g0.CompressedKeys(&p)[0] == g1.CompressedKeys(&p)[0] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("groups 0 and 1 agree on %d/1000 keys; polynomials not offset", same)
	}
}

func TestPipelineTaskLifecycle(t *testing.T) {
	pl := NewPipeline(2)
	g := pl.Group(0)
	_ = g.ConfigureUnit(0, packet.KeyFiveTuple)
	r := testRule(7, MemRange{Base: 0, Buckets: 1024})
	if err := g.CMU(1).InstallRule(r); err != nil {
		t.Fatal(err)
	}
	locs := pl.Locate(7)
	if len(locs) != 1 || locs[0].CMU != 1 || locs[0].Group != g {
		t.Fatalf("Locate = %+v", locs)
	}
	p := packet.Packet{SrcIP: 5, Proto: 6}
	pl.Process(&p)
	if pl.Packets() != 1 {
		t.Fatal("packet counter wrong")
	}
	rows, err := pl.ReadTask(7)
	if err != nil || len(rows) != 1 {
		t.Fatalf("ReadTask: %v", err)
	}
	if n := pl.RemoveTask(7); n != 1 {
		t.Fatalf("RemoveTask removed %d", n)
	}
	if _, err := pl.ReadTask(7); err == nil {
		t.Fatal("reading a removed task must fail")
	}
}

// --- Layout planner ---

func TestPlanCrossStacked(t *testing.T) {
	if l := PlanCrossStacked(12); l.Groups != 9 {
		t.Fatalf("12 stages → %d groups, want 9 (paper headline)", l.Groups)
	}
	if l := PlanCrossStacked(4); l.Groups != 1 {
		t.Fatalf("4 stages → %d groups, want 1", l.Groups)
	}
	if l := PlanCrossStacked(3); l.Groups != 0 {
		t.Fatal("under one group length → no groups")
	}
}

func TestCrossStackedUtilizationMatchesPaper(t *testing.T) {
	u := PlanCrossStacked(12).Utilization()
	if u.HashUnits != 0.75 {
		t.Fatalf("hash utilization = %v, paper reports 75%%", u.HashUnits)
	}
	if u.SALUs != 0.5625 {
		t.Fatalf("SALU utilization = %v, paper reports 56.25%%", u.SALUs)
	}
}

func TestPlanWithRecirculation(t *testing.T) {
	l := PlanWithRecirculation(12)
	if l.Mirrored != 3 {
		t.Fatalf("recirculation splices %d groups, paper's Appendix E gives 3", l.Mirrored)
	}
	if l.Groups+l.Mirrored != 12 {
		t.Fatalf("total groups with recirculation = %d, want 12", l.Groups+l.Mirrored)
	}
}

func TestMaxSelectableKeys(t *testing.T) {
	if MaxSelectableKeys(3) != 6 {
		t.Fatal("3 units → 6 selectable keys (3 direct + 3 XOR pairs)")
	}
	if MaxSelectableKeys(1) != 1 {
		t.Fatal("1 unit → 1 key")
	}
}

func TestMaxCMUsByPHV(t *testing.T) {
	// Compression makes the CMU count independent of key size.
	c32 := MaxCMUsByPHV(32, true)
	c360 := MaxCMUsByPHV(360, true)
	if c32 != c360 {
		t.Fatalf("compressed CMUs vary with key size: %d vs %d", c32, c360)
	}
	// Without compression the count must fall as keys grow.
	u32 := MaxCMUsByPHV(32, false)
	u360 := MaxCMUsByPHV(360, false)
	if u360 >= u32 {
		t.Fatalf("uncompressed CMUs did not shrink: %d vs %d", u32, u360)
	}
	// The paper's headline: ~5× more CMUs at 350+ bits.
	if ratio := float64(c360) / float64(u360); ratio < 3 {
		t.Fatalf("compression advantage at 360 bits = %.1fx, want ≥ 3x", ratio)
	}
	// Never exceed the cross-stacking SALU cap.
	cap_ := PlanCrossStacked(dataplane.NumStages).Groups * CMUsPerGroup
	if c32 > cap_ {
		t.Fatalf("CMU count %d exceeds SALU cap %d", c32, cap_)
	}
}

func TestGroupFootprintHashShare(t *testing.T) {
	// One group's hash usage must be the paper's 8.3% of the pipeline
	// (6 of 72 units).
	g := NewGroup(GroupConfig{})
	fp := g.Footprint()
	if fp.HashUnits != 6 {
		t.Fatalf("group hash units = %d, want 6", fp.HashUnits)
	}
	u := dataplane.UtilizationOf(fp, dataplane.PipelineCapacity(dataplane.NumStages))
	if u.HashUnits < 0.08 || u.HashUnits > 0.09 {
		t.Fatalf("group hash share = %.4f, want ≈ 0.083", u.HashUnits)
	}
}

func TestPipelineRecirculation(t *testing.T) {
	pl := NewPipeline(1)
	spliced := NewGroup(GroupConfig{ID: 100})
	if err := pl.AddSpliced(spliced); err != nil {
		t.Fatal(err)
	}
	_ = spliced.ConfigureUnit(0, packet.KeyFiveTuple)
	// A task on the spliced group measuring only dport-80 traffic.
	r := testRule(9, MemRange{Base: 0, Buckets: DefaultBuckets})
	r.Filter = packet.Filter{DstPort: 80}
	if err := spliced.CMU(0).InstallRule(r); err != nil {
		t.Fatal(err)
	}
	web := packet.Packet{SrcIP: 1, DstPort: 80, Proto: 6}
	other := packet.Packet{SrcIP: 1, DstPort: 443, Proto: 6}
	for i := 0; i < 10; i++ {
		pl.Process(&web)
		pl.Process(&other)
	}
	if pl.Packets() != 20 {
		t.Fatalf("packets = %d", pl.Packets())
	}
	// Only the matching half is mirrored — the Appendix-E bandwidth
	// overhead is per-task, not global.
	if pl.Recirculated() != 10 {
		t.Fatalf("recirculated = %d, want 10", pl.Recirculated())
	}
	// The spliced task counted its traffic.
	rows, err := pl.ReadTask(9)
	if err != nil || len(rows) != 1 {
		t.Fatalf("ReadTask: %v", err)
	}
	var sum uint32
	for _, v := range rows[0] {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("spliced task counted %d, want 10", sum)
	}
	if n := pl.RemoveTask(9); n != 1 {
		t.Fatalf("RemoveTask = %d", n)
	}
}

func TestPipelineSplicedBound(t *testing.T) {
	pl := NewPipeline(1)
	for i := 0; i < StagesPerGroup-1; i++ {
		if err := pl.AddSpliced(NewGroup(GroupConfig{ID: 200 + i})); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.AddSpliced(NewGroup(GroupConfig{ID: 299})); err == nil {
		t.Fatal("fourth spliced group must be rejected (Appendix E bound)")
	}
}

func TestParamSourcesResolve(t *testing.T) {
	p := packet.Packet{SrcIP: 5, Size: 900, TimestampNs: 3_000_000,
		QueueLength: 44, QueueDelayNs: 77}
	ctx := &Context{Pkt: &p, PrevResult: 11, PrevOld: 22}
	keys := []uint32{0xAABBCCDD}
	cases := []struct {
		src  ParamSource
		want uint32
	}{
		{Const(9), 9},
		{MaxValue(), ^uint32(0)},
		{PacketSize(), 900},
		{TimestampUs(), 3000},
		{QueueLength(), 44},
		{QueueDelay(), 77},
		{CompressedKey(FullKey(0).SubRange(0, 8)), 0xDD},
		{PrevResult(), 11},
		{PrevOld(), 22},
	}
	for i, c := range cases {
		if got := c.src.resolve(ctx, keys); got != c.want {
			t.Errorf("case %d: resolve = %d, want %d", i, got, c.want)
		}
	}
}

func TestTransformApply(t *testing.T) {
	ctx := &Context{Pkt: &packet.Packet{}}
	// Coupon: in-range hash draws a one-hot bit; out-of-range drops.
	coupon := Transform{Kind: TransformCoupon, Coupons: 4, ProbLog2: 4}
	p1, p2, drop := coupon.apply(ctx, 0x20000000, 0) // top 4 bits = 2 < 4
	if drop || p1 != 1<<2 || p2 != 1 {
		t.Fatalf("coupon draw = (%#x,%d,%v)", p1, p2, drop)
	}
	if _, _, drop := coupon.apply(ctx, 0xF0000000, 0); !drop {
		t.Fatal("coupon index 15 ≥ 4 must drop")
	}
	// BitSelect: one-hot within the bucket width.
	bs := Transform{Kind: TransformBitSelect, Width: 16}
	p1, _, _ = bs.apply(ctx, 21, 0)
	if p1 != 1<<(21%16) {
		t.Fatalf("bit select = %#x", p1)
	}
	// LZRank: rank of the leftmost 1-bit.
	lz := Transform{Kind: TransformLZRank, Discard: 0}
	if p1, _, _ = lz.apply(ctx, 0x80000000, 0); p1 != 1 {
		t.Fatalf("rank of MSB-set = %d", p1)
	}
	if p1, _, _ = lz.apply(ctx, 0, 0); p1 != 33 {
		t.Fatalf("rank of zero = %d, want 33 (all-zero convention)", p1)
	}
	lz4 := Transform{Kind: TransformLZRank, Discard: 4}
	if p1, _, _ = lz4.apply(ctx, 0x08000000, 0); p1 != 1 {
		t.Fatalf("rank after discard = %d", p1)
	}
	// IntervalSub: new flow → 0; stale older timestamp → drop; else diff.
	ctx.PrevNewFlow = true
	if p1, _, drop = (Transform{Kind: TransformIntervalSub}).apply(ctx, 500, 0); drop || p1 != 0 {
		t.Fatalf("new-flow interval = (%d,%v)", p1, drop)
	}
	ctx.PrevNewFlow = false
	ctx.PrevOld = 400
	if p1, _, drop = (Transform{Kind: TransformIntervalSub}).apply(ctx, 500, 0); drop || p1 != 100 {
		t.Fatalf("interval = (%d,%v)", p1, drop)
	}
	if _, _, drop = (Transform{Kind: TransformIntervalSub}).apply(ctx, 300, 0); !drop {
		t.Fatal("negative interval must drop")
	}
	// ZeroGate.
	zg := Transform{Kind: TransformZeroGate, IfZero: 7, Else: 3}
	if p1, _, _ = zg.apply(ctx, 0, 0); p1 != 7 {
		t.Fatalf("zero gate (0) = %d", p1)
	}
	if p1, _, _ = zg.apply(ctx, 99, 0); p1 != 3 {
		t.Fatalf("zero gate (99) = %d", p1)
	}
	// None passes through.
	if p1, p2, drop = (Transform{}).apply(ctx, 5, 6); p1 != 5 || p2 != 6 || drop {
		t.Fatal("identity transform broken")
	}
}

func TestTransformTCAMEntries(t *testing.T) {
	if (Transform{Kind: TransformCoupon, Coupons: 8}).TCAMEntries() != 9 {
		t.Fatal("coupon table: c+1 entries")
	}
	if (Transform{Kind: TransformZeroGate}).TCAMEntries() != 2 ||
		(Transform{Kind: TransformIntervalSub}).TCAMEntries() != 2 {
		t.Fatal("two-way transforms: 2 entries")
	}
	// Static shared tables cost nothing per task (Table 3's delay model).
	if (Transform{Kind: TransformBitSelect, Width: 32}).TCAMEntries() != 0 ||
		(Transform{Kind: TransformLZRank}).TCAMEntries() != 0 ||
		(Transform{}).TCAMEntries() != 0 {
		t.Fatal("task-independent transforms must cost 0 deployment entries")
	}
}

func TestAccessorSmoke(t *testing.T) {
	g := NewGroup(GroupConfig{ID: 7})
	if g.ID() != 7 {
		t.Fatal("group ID accessor")
	}
	if g.CMU(1).Index() != 1 {
		t.Fatal("CMU index accessor")
	}
	_ = g.ConfigureUnit(0, packet.KeySrcIP)
	if !g.UnitSpec(0).Equal(packet.KeySrcIP) {
		t.Fatal("unit spec accessor")
	}
	pl := NewPipelineWith(g)
	if pl.Groups() != 1 || pl.SplicedGroups() != 0 {
		t.Fatal("pipeline accessors")
	}
	if ShiftBased.String() != "shift" || TCAMBased.String() != "tcam" {
		t.Fatal("translation method names")
	}
}
