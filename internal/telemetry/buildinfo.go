package telemetry

import (
	"fmt"
	"io"
	"runtime/debug"
	"sync"
)

// BuildInfo describes the running binary, resolved once from the Go
// build-info block every module-built binary carries. Version is the
// module version ("(devel)" for a plain `go build`), Commit the VCS
// revision the build was stamped with (empty outside a checkout).
type BuildInfo struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	Modified  bool   `json:"modified"` // VCS working tree was dirty
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuildInfo resolves the binary's build metadata (cached after the
// first call).
func ReadBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Commit = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the -version flag output, e.g.
//
//	flymond (devel) commit 1a2b3c4d (go1.24.1)
func (b BuildInfo) String() string {
	out := b.Version
	if b.Commit != "" {
		c := b.Commit
		if len(c) > 12 {
			c = c[:12]
		}
		out += " commit " + c
		if b.Modified {
			out += "+dirty"
		}
	}
	return out + " (" + b.GoVersion + ")"
}

// WriteBuildInfoMetric emits the standard build-info gauge:
//
//	flymon_build_info{version="(devel)",commit="...",goversion="go1.24"} 1
//
// Register it on a Registry with AddMetricsWriter so every daemon scrape
// identifies the binary serving it.
func WriteBuildInfoMetric(w io.Writer) {
	b := ReadBuildInfo()
	fmt.Fprintf(w, "# HELP flymon_build_info Build metadata of the running binary (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE flymon_build_info gauge\n")
	fmt.Fprintf(w, "flymon_build_info{version=%q,commit=%q,goversion=%q} 1\n",
		b.Version, b.Commit, b.GoVersion)
}
