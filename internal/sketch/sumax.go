package sketch

import (
	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// SuMax (Zhao et al., LightGuardian) is a d-row sketch with an approximate
// conservative-update rule: rows are visited in pipeline order carrying the
// running minimum, and a row's counter is incremented only while it is below
// that minimum. This bounds overestimation much tighter than CMS at the
// same memory, at the cost of pipeline cooperation — which is why the
// FlyMon version needs d CMUs in d distinct CMU Groups (§4, Heavy Hitter).
//
// The same structure with a MAX update rule ("SuMax(Max)") tracks per-flow
// maxima; the estimate is the minimum across rows.
type SuMax struct {
	spec packet.KeySpec
	d, w int
	rows [][]uint32
	hash *hashing.Family
}

// NewSuMax builds a d×w SuMax sketch keyed by spec (w rounded to a power of
// two).
func NewSuMax(spec packet.KeySpec, d, w int) *SuMax {
	w = ceilPow2(w)
	s := &SuMax{spec: spec, d: d, w: w, hash: hashing.NewFamily(d, spec)}
	s.rows = make([][]uint32, d)
	backing := make([]uint32, d*w)
	for j := range s.rows {
		s.rows[j], backing = backing[:w], backing[w:]
	}
	return s
}

// Add applies the approximate conservative update with increment v: row j's
// counter is bumped only if it is strictly below the minimum value observed
// in rows 0..j-1 (∞ for the first row). This is exactly the semantics of
// chaining Cond-ADD(p1=v, p2=min-so-far) across CMUs.
func (s *SuMax) Add(p *packet.Packet, v uint32) {
	min := ^uint32(0)
	for j := 0; j < s.d; j++ {
		idx := s.hash.Hash(j, p) & uint32(s.w-1)
		c := s.rows[j][idx]
		if c < min {
			c = satAdd32(c, v)
			s.rows[j][idx] = c
			if c < min {
				min = c
			}
		}
	}
}

// AddPacket counts packet p (increment 1).
func (s *SuMax) AddPacket(p *packet.Packet) { s.Add(p, 1) }

// UpdateMax applies the MAX rule with value v to every row (SuMax(Max)).
func (s *SuMax) UpdateMax(p *packet.Packet, v uint32) {
	for j := 0; j < s.d; j++ {
		idx := s.hash.Hash(j, p) & uint32(s.w-1)
		if v > s.rows[j][idx] {
			s.rows[j][idx] = v
		}
	}
}

// Estimate returns the row-minimum estimate for p's flow (valid for both
// the Sum and Max usage).
func (s *SuMax) Estimate(p *packet.Packet) uint32 {
	min := ^uint32(0)
	for j := 0; j < s.d; j++ {
		idx := s.hash.Hash(j, p) & uint32(s.w-1)
		if c := s.rows[j][idx]; c < min {
			min = c
		}
	}
	return min
}

// EstimateKey is Estimate for a canonical key.
func (s *SuMax) EstimateKey(k packet.CanonicalKey) uint32 {
	min := ^uint32(0)
	for j := 0; j < s.d; j++ {
		idx := s.hash.HashBytes(j, k[:]) & uint32(s.w-1)
		if c := s.rows[j][idx]; c < min {
			min = c
		}
	}
	return min
}

// MemoryBytes returns the counter memory footprint.
func (s *SuMax) MemoryBytes() int { return s.d * s.w * 4 }

// Reset zeroes all counters.
func (s *SuMax) Reset() {
	for _, row := range s.rows {
		clear(row)
	}
}
