package mmtrace

import (
	"fmt"
	"sync/atomic"

	"flymon/internal/packet"
	"flymon/internal/telemetry"
)

// ReplayConfig parameterizes a Replayer.
type ReplayConfig struct {
	// Traces are the mapped traces to replay. Each trace gets its own
	// producer goroutine, so a multi-file replay is genuinely
	// multi-producer on the ring.
	Traces []*Trace
	// Workers is the consumer count — must equal the worker-pool width the
	// replayer will feed (each worker owns one scratch slab).
	Workers int
	// Batch is the span width in frames (default 512: ~18 KiB of records,
	// comfortably L2-resident together with the decode scratch).
	Batch int
	// RingSpans is the ring capacity in spans (default 1024, rounded up to
	// a power of two).
	RingSpans int
	// Passes is how many times each producer replays its trace: 0 or 1 =
	// once; n > 1 = n passes; negative = loop until Stop (steady-state
	// soak / bench mode).
	Passes int
}

const (
	defaultBatch     = 512
	defaultRingSpans = 1024
)

// workerState is one consumer's private scratch: the packet slab spans
// decode into and the span descriptor PopBatch fills. Slabs are allocated
// once at construction, so steady-state replay performs zero allocations.
type workerState struct {
	buf  []packet.Packet
	span [1]Span
}

// Replayer drives traces through the ring into a worker pool. It is the
// core.BatchSource for replay: each pool worker calls Next(w) in a loop,
// receiving decoded batches until the producers finish (or Stop is called)
// and the ring drains.
//
//	replayer := mmtrace.NewReplayer(cfg)
//	replayer.Start()
//	ctrl.ProcessSource(replayer) // blocks until the ring drains
type Replayer struct {
	traces  []*Trace
	ring    *Ring
	workers []workerState
	batch   int
	passes  int

	producers atomic.Int64 // producers still running
	stop      atomic.Bool
	packets   atomic.Uint64 // frames delivered to consumers
	started   atomic.Bool
}

// NewReplayer validates the config and allocates all replay state up
// front (ring slots and per-worker scratch slabs).
func NewReplayer(cfg ReplayConfig) (*Replayer, error) {
	if len(cfg.Traces) == 0 {
		return nil, fmt.Errorf("mmtrace: replay needs at least one trace")
	}
	for i, t := range cfg.Traces {
		if t == nil || t.recs == nil && t.frames > 0 {
			return nil, fmt.Errorf("mmtrace: replay trace %d is closed", i)
		}
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("mmtrace: replay needs a positive worker count")
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = defaultBatch
	}
	ringSpans := cfg.RingSpans
	if ringSpans <= 0 {
		ringSpans = defaultRingSpans
	}
	passes := cfg.Passes
	if passes == 0 {
		passes = 1
	}
	r := &Replayer{
		traces:  cfg.Traces,
		ring:    NewRing(ringSpans),
		workers: make([]workerState, cfg.Workers),
		batch:   batch,
		passes:  passes,
	}
	for i := range r.workers {
		r.workers[i].buf = make([]packet.Packet, batch)
	}
	return r, nil
}

// Start launches one producer goroutine per trace. The last producer to
// finish closes the ring; consumers then drain and terminate. Start may be
// called once.
func (r *Replayer) Start() {
	if r.started.Swap(true) {
		panic("mmtrace: Replayer.Start called twice")
	}
	r.producers.Store(int64(len(r.traces)))
	for i := range r.traces {
		go r.produce(int32(i))
	}
}

// produce is one trace's producer: it walks the trace in batch-sized spans
// and pushes them, buffering pushBuf spans per PushBatch so head is
// claimed in chunks, not per span.
func (r *Replayer) produce(src int32) {
	const pushBuf = 64
	t := r.traces[src]
	frames := int64(t.Frames())
	spans := make([]Span, 0, pushBuf)
	for pass := int32(0); frames > 0; pass++ {
		if r.passes > 0 && int(pass) >= r.passes {
			break
		}
		if r.stop.Load() {
			break
		}
		for lo := int64(0); lo < frames; {
			hi := lo + int64(r.batch)
			if hi > frames {
				hi = frames
			}
			spans = append(spans, Span{Src: src, Pass: pass, Lo: lo, Hi: hi})
			lo = hi
			if len(spans) == pushBuf {
				r.ring.PushBatch(spans)
				spans = spans[:0]
				if r.stop.Load() {
					break
				}
			}
		}
		if len(spans) > 0 {
			r.ring.PushBatch(spans)
			spans = spans[:0]
		}
	}
	if r.producers.Add(-1) == 0 {
		r.ring.Close()
	}
}

// Next implements core.BatchSource: it claims the next span for worker w,
// decodes its frames into w's scratch slab, and returns the batch. The
// returned slice is valid until w's next call. Nil means the replay is
// complete (producers done, ring drained).
func (r *Replayer) Next(w int) []packet.Packet {
	s := &r.workers[w]
	if r.ring.PopBatch(s.span[:]) == 0 {
		return nil
	}
	sp := s.span[0]
	n := int(sp.Hi - sp.Lo)
	r.traces[sp.Src].DecodeRange(int(sp.Lo), s.buf[:n])
	r.packets.Add(uint64(n))
	return s.buf[:n]
}

// NextFrames implements core.FrameSource: it claims the next span for
// worker w and returns it as (trace, lo, hi) — no decoding, no packet
// materialization. The FrameView-native engine executes straight over the
// mapped record bytes. A nil trace means the replay is complete.
// NextFrames and Next may be mixed freely (a mid-replay engine switch just
// changes which form the next span is delivered in).
func (r *Replayer) NextFrames(w int) (*Trace, int, int) {
	s := &r.workers[w]
	if r.ring.PopBatch(s.span[:]) == 0 {
		return nil, 0, 0
	}
	sp := s.span[0]
	r.packets.Add(uint64(sp.Hi - sp.Lo))
	return r.traces[sp.Src], int(sp.Lo), int(sp.Hi)
}

// Stop asks the producers to finish their in-flight span chunk and close
// the ring; consumers then drain naturally. Used by loop-mode replays
// (Passes < 0) and signal handlers. Safe to call multiple times.
func (r *Replayer) Stop() { r.stop.Store(true) }

// Packets returns the frames delivered to consumers so far.
func (r *Replayer) Packets() uint64 { return r.packets.Load() }

// Ring exposes the replay ring (telemetry reads its occupancy and stall
// counters through it).
func (r *Replayer) Ring() *Ring { return r.ring }

// ReplayStats is a telemetry snapshot of a replay in flight.
type ReplayStats struct {
	Packets   uint64 // frames delivered to consumers
	Producers int    // producer goroutines still running
	Ring      RingStats
}

// Stats snapshots the replayer.
func (r *Replayer) Stats() ReplayStats {
	return ReplayStats{
		Packets:   r.packets.Load(),
		Producers: int(r.producers.Load()),
		Ring:      r.ring.Stats(),
	}
}

// TelemetryReplay implements telemetry.ReplaySource, so attaching the
// replayer to a registry (SetReplaySource) surfaces ring occupancy and
// stall counters on /metrics while the replay runs.
func (r *Replayer) TelemetryReplay() telemetry.ReplayReport {
	s := r.Stats()
	return telemetry.ReplayReport{
		Packets:       s.Packets,
		Producers:     s.Producers,
		RingCap:       s.Ring.Cap,
		RingOccupancy: s.Ring.Occupancy,
		RingSpans:     s.Ring.Spans,
		PushStalls:    s.Ring.PushStalls,
		PopStalls:     s.Ring.PopStalls,
	}
}
