package telemetry

import (
	"sync/atomic"
	"time"
)

// MergeLevels bounds the per-level latency histograms of the merge tree.
// Level 0 is a leaf-adjacent merge; with the default arity of 4 a
// 256-switch fleet is depth 4, so 8 levels covers any fleet this repo can
// simulate (deeper merges fold into the last bucket).
const MergeLevels = 8

// MergeTreeStats instruments the fleet query plane's parallel merge tree
// (internal/netwide/mergetree.go) and the epoch-coherent readout path:
// tree shape gauges, interior-merge latency by level, and the straggler
// policy outcomes of epoch queries.
type MergeTreeStats struct {
	Queries     atomic.Uint64 // merge-tree queries executed
	FlatFolds   atomic.Uint64 // queries that took the sequential flat-fold engine instead
	Merges      atomic.Uint64 // interior merge nodes executed
	EpochQueries atomic.Uint64 // queries pinned to an epoch boundary

	LastDepth  atomic.Uint64 // gauge: depth of the last completed tree
	LastFanout atomic.Uint64 // gauge: leaves merged by the last completed tree

	MergeLatency Histogram              // one interior merge node
	LevelLatency [MergeLevels]Histogram // merge latency by tree level

	// Straggler policy outcomes (epoch-coherent queries only).
	StragglerWaits    atomic.Uint64 // switches waited on that caught up in time
	StragglersSkipped atomic.Uint64 // switches dropped without waiting (skip policy)
	StragglersTimedOut atomic.Uint64 // switches still behind when the wait bound expired
	StragglerWait     Histogram      // time spent polling a behind switch
}

// ObserveLevel records one interior merge's latency at a tree level.
func (m *MergeTreeStats) ObserveLevel(level int, d time.Duration) {
	if level < 0 {
		level = 0
	}
	if level >= MergeLevels {
		level = MergeLevels - 1
	}
	m.LevelLatency[level].Observe(d)
}

// MergeTreeReport is the serializable form of MergeTreeStats.
type MergeTreeReport struct {
	Queries      uint64 `json:"queries"`
	FlatFolds    uint64 `json:"flat_folds"`
	Merges       uint64 `json:"merges"`
	EpochQueries uint64 `json:"epoch_queries"`
	LastDepth    uint64 `json:"last_depth"`
	LastFanout   uint64 `json:"last_fanout"`

	MergeLatency HistogramSnapshot              `json:"merge_latency"`
	LevelLatency [MergeLevels]HistogramSnapshot `json:"level_latency"`

	StragglerWaits     uint64            `json:"straggler_waits"`
	StragglersSkipped  uint64            `json:"stragglers_skipped"`
	StragglersTimedOut uint64            `json:"stragglers_timed_out"`
	StragglerWait      HistogramSnapshot `json:"straggler_wait"`
}

// Snapshot folds the merge-tree counters into a plain value.
func (m *MergeTreeStats) Snapshot() MergeTreeReport {
	r := MergeTreeReport{
		Queries:            m.Queries.Load(),
		FlatFolds:          m.FlatFolds.Load(),
		Merges:             m.Merges.Load(),
		EpochQueries:       m.EpochQueries.Load(),
		LastDepth:          m.LastDepth.Load(),
		LastFanout:         m.LastFanout.Load(),
		MergeLatency:       m.MergeLatency.Snapshot(),
		StragglerWaits:     m.StragglerWaits.Load(),
		StragglersSkipped:  m.StragglersSkipped.Load(),
		StragglersTimedOut: m.StragglersTimedOut.Load(),
		StragglerWait:      m.StragglerWait.Snapshot(),
	}
	for i := range m.LevelLatency {
		r.LevelLatency[i] = m.LevelLatency[i].Snapshot()
	}
	return r
}
