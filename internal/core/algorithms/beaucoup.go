package algorithms

import (
	"fmt"
	"math/bits"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
	"flymon/internal/sketch"
)

// BeauCoupTask is FlyMon-BeauCoup (§4, DDoS Victim Detection): d CMUs each
// holding a coupon table. The key (e.g. C(DstIP)) locates a bucket; p1
// (e.g. C(SrcIP)) is mapped to a one-hot coupon by the preparation stage;
// the AND-OR operation's OR branch collects it. Instead of the original's
// per-bucket checksum, FlyMon hardens against hash collisions CMS-style: a
// key is reported only when all d tables have collected the target coupons.
type BeauCoupTask struct {
	Group  *core.Group
	TaskID int

	keyUnit   int
	paramUnit int
	Cfg       sketch.CouponConfig
	Base      int // first CMU index
	D         int
	Rows      []core.MemRange
	Method    core.TranslationMethod
}

// InstallBeauCoup installs a FlyMon-BeauCoup task on group g: distinct
// `param` values counted per `key` value against `threshold`.
func InstallBeauCoup(g *core.Group, taskID int, filter packet.Filter,
	key, param packet.KeySpec, threshold, d int, rows []core.MemRange, at ...int) (*BeauCoupTask, error) {
	base := baseCMU(at)
	if d < 1 || d > g.CMUs() {
		return nil, fmt.Errorf("algorithms: BeauCoup depth %d exceeds group's %d CMUs", d, g.CMUs())
	}
	rows, err := checkRows(g, rows, base, d)
	if err != nil {
		return nil, err
	}
	cfg := sketch.SolveCouponConfig(threshold)
	if w := g.CMU(base).Register().BitWidth(); cfg.Coupons > w {
		cfg.Coupons = w // coupons must fit the uniform bucket width
		if cfg.Collect > w {
			cfg.Collect = w
		}
	}
	keyUnit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	paramUnit, err := EnsureUnit(g, param)
	if err != nil {
		return nil, err
	}
	t := &BeauCoupTask{Group: g, TaskID: taskID, keyUnit: keyUnit, paramUnit: paramUnit,
		Cfg: cfg, Base: base, D: d, Rows: rows, Method: core.TCAMBased}
	for i := 0; i < d; i++ {
		rule := &core.Rule{
			TaskID:      taskID,
			Filter:      filter,
			Key:         rowSelector(keyUnit, base+i),
			P1:          core.CompressedKey(core.FullKey(paramUnit).SubRange(rowRotation*(base+i), 32)),
			P2:          core.Const(1),
			Prep:        core.Transform{Kind: core.TransformCoupon, Coupons: cfg.Coupons, ProbLog2: cfg.ProbLog2},
			Mem:         rows[i],
			Translation: t.Method,
			Op:          dataplane.OpAndOr,
		}
		if err := g.CMU(base + i).InstallRule(rule); err != nil {
			t.Uninstall()
			return nil, err
		}
	}
	return t, nil
}

// CollectedCoupons returns the minimum coupon count across tables for
// canonical key k.
func (t *BeauCoupTask) CollectedCoupons(k packet.CanonicalKey) int {
	min := 64
	for i := 0; i < t.D; i++ {
		idx := rowIndex(t.Group, t.keyUnit, t.Base+i, k, t.Rows[i], t.Method)
		n := bits.OnesCount32(t.Group.CMU(t.Base + i).Register().Read(idx))
		if n < min {
			min = n
		}
	}
	return min
}

// Reported returns the candidates whose coupon target is met in all d
// tables.
func (t *BeauCoupTask) Reported(candidates []packet.CanonicalKey) map[packet.CanonicalKey]bool {
	out := make(map[packet.CanonicalKey]bool)
	for _, k := range candidates {
		if t.CollectedCoupons(k) >= t.Cfg.Collect {
			out[k] = true
		}
	}
	return out
}

// EstimateDistinct inverts key k's coupon count into a distinct-value
// estimate via the coupon-collector expectation.
func (t *BeauCoupTask) EstimateDistinct(k packet.CanonicalKey) float64 {
	j := t.CollectedCoupons(k)
	if j <= 0 {
		return 0
	}
	if j > t.Cfg.Coupons {
		j = t.Cfg.Coupons
	}
	cfg := t.Cfg
	cfg.Collect = j
	return cfg.ExpectedDraws()
}

// MemoryBytes returns the task's register memory footprint.
func (t *BeauCoupTask) MemoryBytes() int {
	total := 0
	for i, r := range t.Rows {
		total += r.Buckets * t.Group.CMU(t.Base+i).Register().BitWidth() / 8
	}
	return total
}

// Uninstall removes the task's rules.
func (t *BeauCoupTask) Uninstall() {
	for i := 0; i < t.Group.CMUs(); i++ {
		t.Group.CMU(i).RemoveRule(t.TaskID)
	}
}

// RowIndexFor returns the coupon-table index row i uses for canonical key
// k — the readout primitive merged network-wide detection builds on.
func (t *BeauCoupTask) RowIndexFor(i int, k packet.CanonicalKey) uint32 {
	return rowIndex(t.Group, t.keyUnit, t.Base+i, k, t.Rows[i], t.Method)
}
