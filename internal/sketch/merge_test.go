package sketch

import (
	"testing"

	"flymon/internal/metrics"
	"flymon/internal/packet"
)

func TestCMSMergeEqualsUnionStream(t *testing.T) {
	a := NewCMS(packet.KeyFiveTuple, 3, 1<<12)
	b := NewCMS(packet.KeyFiveTuple, 3, 1<<12)
	whole := NewCMS(packet.KeyFiveTuple, 3, 1<<12)
	tr := genTrace(1000, 40_000, 70)
	for i := range tr.Packets {
		if i%2 == 0 {
			a.AddPacket(&tr.Packets[i])
		} else {
			b.AddPacket(&tr.Packets[i])
		}
		whole.AddPacket(&tr.Packets[i])
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := packet.KeyFiveTuple.Extract(&tr.Packets[i])
		if a.EstimateKey(k) != whole.EstimateKey(k) {
			t.Fatalf("merged CMS diverges from union-stream CMS for flow %d", i)
		}
	}
}

func TestCMSMergeGeometryMismatch(t *testing.T) {
	a := NewCMS(packet.KeyFiveTuple, 3, 1<<12)
	b := NewCMS(packet.KeyFiveTuple, 2, 1<<12)
	if err := a.Merge(b); err == nil {
		t.Fatal("depth mismatch must fail")
	}
	c := NewCMS(packet.KeySrcIP, 3, 1<<12)
	if err := a.Merge(c); err == nil {
		t.Fatal("key-spec mismatch must fail")
	}
}

func TestBloomUnion(t *testing.T) {
	a := NewBloom(packet.KeyFiveTuple, 1<<14, 3)
	b := NewBloom(packet.KeyFiveTuple, 1<<14, 3)
	tr := genTrace(600, 1200, 71)
	for i := range tr.Packets {
		if i%2 == 0 {
			a.Insert(&tr.Packets[i])
		} else {
			b.Insert(&tr.Packets[i])
		}
	}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Packets {
		if !a.Contains(&tr.Packets[i]) {
			t.Fatalf("union filter lost packet %d's flow", i)
		}
	}
	small := NewBloom(packet.KeyFiveTuple, 1<<10, 3)
	if err := a.Union(small); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a := NewHLL(packet.KeyFiveTuple, 12)
	b := NewHLL(packet.KeyFiveTuple, 12)
	whole := NewHLL(packet.KeyFiveTuple, 12)
	tr := genTrace(20_000, 40_000, 72)
	for i := range tr.Packets {
		// Overlapping halves: idempotence matters for HLL merges.
		if i%3 != 0 {
			a.AddPacket(&tr.Packets[i])
		}
		if i%3 != 1 {
			b.AddPacket(&tr.Packets[i])
		}
		whole.AddPacket(&tr.Packets[i])
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if re := metrics.RE(whole.Estimate(), a.Estimate()); re > 0.02 {
		t.Fatalf("merged HLL estimate diverges: RE %.4f", re)
	}
	other := NewHLL(packet.KeyFiveTuple, 10)
	if err := a.Merge(other); err == nil {
		t.Fatal("precision mismatch must fail")
	}
}

func TestOddSketchMergeIsSymmetricDifference(t *testing.T) {
	a := NewOddSketch(packet.KeyFiveTuple, 1<<14)
	b := NewOddSketch(packet.KeyFiveTuple, 1<<14)
	tr := genTrace(2000, 2000, 73)
	seen := map[packet.CanonicalKey]bool{}
	shared := 0
	for i := range tr.Packets {
		k := packet.KeyFiveTuple.Extract(&tr.Packets[i])
		if seen[k] {
			continue
		}
		seen[k] = true
		switch len(seen) % 2 {
		case 0:
			a.Insert(&tr.Packets[i])
			b.Insert(&tr.Packets[i])
			shared++
		default:
			a.Insert(&tr.Packets[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Shared elements cancel: the merged sketch holds only a's exclusive
	// elements.
	onlyA := len(seen) - shared
	est := OddSketchDifferenceFromOnes(a.OnesCount(), a.Bits())
	if re := metrics.RE(float64(onlyA), est); re > 0.15 {
		t.Fatalf("merged odd sketch estimate %.0f vs truth %d (RE %.3f)", est, onlyA, re)
	}
}

func TestRawRegisterMergeHelpers(t *testing.T) {
	add1 := []uint32{1, ^uint32(0), 3}
	add2 := []uint32{4, 5, 6}
	if err := MergeAddRegisters(add1, add2); err != nil {
		t.Fatal(err)
	}
	if add1[0] != 5 || add1[1] != ^uint32(0) || add1[2] != 9 {
		t.Fatalf("add merge = %v (must saturate)", add1)
	}
	max1 := []uint32{1, 9}
	if err := MergeMaxRegisters(max1, []uint32{5, 2}); err != nil {
		t.Fatal(err)
	}
	if max1[0] != 5 || max1[1] != 9 {
		t.Fatalf("max merge = %v", max1)
	}
	or1 := []uint32{0b0101}
	if err := MergeOrRegisters(or1, []uint32{0b0011}); err != nil {
		t.Fatal(err)
	}
	if or1[0] != 0b0111 {
		t.Fatalf("or merge = %v", or1)
	}
	if MergeAddRegisters([]uint32{1}, []uint32{1, 2}) == nil ||
		MergeMaxRegisters([]uint32{1}, nil) == nil ||
		MergeOrRegisters(nil, []uint32{1}) == nil {
		t.Fatal("length mismatches must fail")
	}
}
