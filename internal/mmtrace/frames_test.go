package mmtrace

import (
	"math/rand"
	"sync"
	"testing"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// TestExtractMaskedMatchesPacketPath: the FrameView key extractor must
// produce exactly the canonical key the decode-then-extract path does, for
// random records and random per-field masks — including a dirty scratch key
// (the frame engine reuses its key buffers across chunks).
func TestExtractMaskedMatchesPacketPath(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 2000; iter++ {
		p := packet.Packet{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
			Proto: uint8(rng.Uint32()), Size: rng.Uint32(),
			TimestampNs:  rng.Uint64() % (1 << 52),
			QueueLength:  rng.Uint32(),
			QueueDelayNs: rng.Uint32(),
		}
		var rec [trace.RecordSize]byte
		trace.EncodeRecord(rec[:], &p)

		var mask [packet.NumFields]uint32
		for f := range mask {
			switch rng.Intn(3) {
			case 0:
				mask[f] = 0
			case 1:
				mask[f] = ^uint32(0)
			default:
				mask[f] = rng.Uint32()
			}
		}

		var decoded packet.Packet
		FrameView(rec[:]).Decode(&decoded)
		want := packet.ExtractMasked(&decoded, mask)

		var got packet.CanonicalKey
		for i := range got {
			got[i] = 0xAA // dirty scratch: ExtractMasked must fully overwrite
		}
		FrameView(rec[:]).ExtractMasked(&mask, &got)
		if got != want {
			t.Fatalf("iter %d: frame extract %x, packet extract %x (mask %v)", iter, got, want, mask)
		}
	}
}

// TestNextFramesDeliversExactlyOnce: concurrent workers pulling via
// NextFrames must cover every frame of every trace exactly once, and the
// replayer's packet counter must agree.
func TestNextFramesDeliversExactlyOnce(t *testing.T) {
	psA := genPackets(10_000)
	psB := genPackets(3_000)
	pathA, _ := writeTraceFile(t, psA)
	pathB, _ := writeTraceFile(t, psB)
	trA, err := Open(pathA)
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := Open(pathB)
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()

	const workers = 4
	rep, err := NewReplayer(ReplayConfig{
		Traces: []*Trace{trA, trB}, Workers: workers, Batch: 256, Passes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*Trace][]int32{trA: make([]int32, trA.Frames()), trB: make([]int32, trB.Frames())}
	var mu sync.Mutex
	var wg sync.WaitGroup
	rep.Start()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				tr, lo, hi := rep.NextFrames(w)
				if tr == nil {
					return
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[tr][i]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for tr, counts := range seen {
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("trace %p frame %d delivered %d times, want exactly once", tr, i, c)
			}
		}
		total += tr.Frames()
	}
	if got := rep.Stats().Packets; got != uint64(total) {
		t.Fatalf("replayer counted %d packets, want %d", got, total)
	}
}
