package dataplane

import (
	"math/rand"
	"testing"
)

// TestApplyBatchMatchesApply is the batched-update property test: for every
// op, a random update stream applied through ApplyBatch must leave the
// register — buckets, access and clamp counters — and the per-update
// (result, old) witnesses bit-identical to applying the same stream one
// call at a time. An 8-bit register keeps saturation (and its clamp
// accounting) in play.
func TestApplyBatchMatchesApply(t *testing.T) {
	const buckets, n = 64, 4096
	rng := rand.New(rand.NewSource(21))
	for _, op := range []StatefulOp{OpNone, OpCondAdd, OpMax, OpAndOr, OpXor} {
		t.Run(op.String(), func(t *testing.T) {
			idx := make([]uint32, n)
			p1 := make([]uint32, n)
			p2 := make([]uint32, n)
			for i := 0; i < n; i++ {
				idx[i] = uint32(rng.Intn(buckets))
				p1[i] = uint32(rng.Intn(300))
				switch {
				case op == OpCondAdd && rng.Intn(4) == 0:
					p2[i] = uint32(rng.Intn(64)) // low ceiling: exercises the cur >= p2 arm
				case op == OpAndOr:
					p2[i] = uint32(rng.Intn(2)) // both AND and OR branches
				default:
					p2[i] = ^uint32(0)
				}
			}

			ref := NewRegister(buckets, 8)
			wantRes := make([]uint32, n)
			wantOld := make([]uint32, n)
			for i := 0; i < n; i++ {
				wantRes[i], wantOld[i] = ref.Apply(op, idx[i], p1[i], p2[i])
			}

			got := NewRegister(buckets, 8)
			gotRes := make([]uint32, n)
			gotOld := make([]uint32, n)
			got.ApplyBatch(op, idx, p1, p2, gotRes, gotOld)

			for i := 0; i < n; i++ {
				if gotRes[i] != wantRes[i] || gotOld[i] != wantOld[i] {
					t.Fatalf("update %d: batch witnessed (%d,%d), sequential (%d,%d)",
						i, gotRes[i], gotOld[i], wantRes[i], wantOld[i])
				}
			}
			for b := uint32(0); b < buckets; b++ {
				if got.Read(b) != ref.Read(b) {
					t.Fatalf("bucket %d: batch %d, sequential %d", b, got.Read(b), ref.Read(b))
				}
			}
			if got.Accesses() != ref.Accesses() {
				t.Fatalf("accesses: batch %d, sequential %d", got.Accesses(), ref.Accesses())
			}
			if got.Clamps() != ref.Clamps() {
				t.Fatalf("clamps: batch %d, sequential %d", got.Clamps(), ref.Clamps())
			}
		})
	}
}

// TestShardApplyBatchMatchesShardApply: same property through a private
// lane, including the lane drain back into shared state.
func TestShardApplyBatchMatchesShardApply(t *testing.T) {
	const buckets, n, shard = 64, 4096, 1
	rng := rand.New(rand.NewSource(22))
	for _, op := range []StatefulOp{OpCondAdd, OpMax, OpAndOr, OpXor} {
		t.Run(op.String(), func(t *testing.T) {
			idx := make([]uint32, n)
			p1 := make([]uint32, n)
			p2 := make([]uint32, n)
			for i := 0; i < n; i++ {
				idx[i] = uint32(rng.Intn(buckets))
				p1[i] = uint32(rng.Intn(300))
				if op == OpAndOr {
					p2[i] = uint32(rng.Intn(2))
				} else {
					p2[i] = ^uint32(0)
				}
			}

			ref := NewRegister(buckets, 8)
			ref.EnableSharding(2)
			wantRes := make([]uint32, n)
			wantOld := make([]uint32, n)
			for i := 0; i < n; i++ {
				wantRes[i], wantOld[i] = ref.ShardApply(shard, op, idx[i], p1[i], p2[i])
			}

			got := NewRegister(buckets, 8)
			got.EnableSharding(2)
			gotRes := make([]uint32, n)
			gotOld := make([]uint32, n)
			got.ShardApplyBatch(shard, op, idx, p1, p2, gotRes, gotOld)

			for i := 0; i < n; i++ {
				if gotRes[i] != wantRes[i] || gotOld[i] != wantOld[i] {
					t.Fatalf("update %d: batch witnessed (%d,%d), sequential (%d,%d)",
						i, gotRes[i], gotOld[i], wantRes[i], wantOld[i])
				}
			}
			ref.DrainRange(op, 0, buckets)
			got.DrainRange(op, 0, buckets)
			for b := uint32(0); b < buckets; b++ {
				if got.Read(b) != ref.Read(b) {
					t.Fatalf("bucket %d after drain: batch %d, sequential %d", b, got.Read(b), ref.Read(b))
				}
			}
			if got.Accesses() != ref.Accesses() {
				t.Fatalf("accesses: batch %d, sequential %d", got.Accesses(), ref.Accesses())
			}
			if got.Clamps() != ref.Clamps() {
				t.Fatalf("clamps: batch %d, sequential %d", got.Clamps(), ref.Clamps())
			}
		})
	}
}

// TestApplyAddBatchMatchesApply: the fetch-and-add specialization must be
// bit-identical to Apply(OpCondAdd, i, p1, ^0) per element on a full-width
// register — including at the 32-bit wrap, where the repair store must
// reproduce Apply's clamp-to-saturation exactly once and leave later adds
// against the saturated bucket as silent no-ops.
func TestApplyAddBatchMatchesApply(t *testing.T) {
	const buckets = 64
	rng := rand.New(rand.NewSource(23))

	t.Run("random", func(t *testing.T) {
		const n = 4096
		idx := make([]uint32, n)
		for i := range idx {
			idx[i] = uint32(rng.Intn(buckets))
		}
		for _, p1 := range []uint32{0, 1, 1500} {
			ref := NewRegister(buckets, 32)
			for _, i := range idx {
				ref.Apply(OpCondAdd, i, p1, ^uint32(0))
			}
			got := NewRegister(buckets, 32)
			got.ApplyAddBatch(idx, p1)
			for b := uint32(0); b < buckets; b++ {
				if got.Read(b) != ref.Read(b) {
					t.Fatalf("p1=%d bucket %d: batch %d, sequential %d", p1, b, got.Read(b), ref.Read(b))
				}
			}
			if got.Clamps() != ref.Clamps() {
				t.Fatalf("p1=%d clamps: batch %d, sequential %d", p1, got.Clamps(), ref.Clamps())
			}
		}
	})

	t.Run("wrap", func(t *testing.T) {
		// Large increments force a wrap: the first saturating update clamps
		// and counts once; every later update is a no-op without a clamp.
		idx := make([]uint32, 16) // all bucket 0
		const p1 = 0x4000_0000
		ref := NewRegister(buckets, 32)
		for range idx {
			ref.Apply(OpCondAdd, 0, p1, ^uint32(0))
		}
		got := NewRegister(buckets, 32)
		got.ApplyAddBatch(idx, p1)
		if got.Read(0) != ref.Read(0) || got.Read(0) != ^uint32(0) {
			t.Fatalf("saturated bucket: batch %d, sequential %d, want %d", got.Read(0), ref.Read(0), ^uint32(0))
		}
		if got.Clamps() != ref.Clamps() || got.Clamps() != 1 {
			t.Fatalf("clamps: batch %d, sequential %d, want exactly 1", got.Clamps(), ref.Clamps())
		}
	})
}

// TestShardApplyAddBatchMatchesShardApply: the lane add with hoisted
// constants must match per-element ShardApply on a narrow register, where
// saturation, clamp counting, and the access counter are all live.
func TestShardApplyAddBatchMatchesShardApply(t *testing.T) {
	const buckets, n, shard = 64, 8192, 1
	rng := rand.New(rand.NewSource(24))
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(rng.Intn(buckets))
	}
	for _, p1 := range []uint32{1, 7} {
		ref := NewRegister(buckets, 8)
		ref.EnableSharding(2)
		for _, i := range idx {
			ref.ShardApply(shard, OpCondAdd, i, p1, ^uint32(0))
		}
		got := NewRegister(buckets, 8)
		got.EnableSharding(2)
		got.ShardApplyAddBatch(shard, idx, p1)

		ref.DrainRange(OpCondAdd, 0, buckets)
		got.DrainRange(OpCondAdd, 0, buckets)
		for b := uint32(0); b < buckets; b++ {
			if got.Read(b) != ref.Read(b) {
				t.Fatalf("p1=%d bucket %d after drain: batch %d, sequential %d", p1, b, got.Read(b), ref.Read(b))
			}
		}
		if got.Accesses() != ref.Accesses() {
			t.Fatalf("p1=%d accesses: batch %d, sequential %d", p1, got.Accesses(), ref.Accesses())
		}
		if got.Clamps() != ref.Clamps() {
			t.Fatalf("p1=%d clamps: batch %d, sequential %d", p1, got.Clamps(), ref.Clamps())
		}
	}
}
