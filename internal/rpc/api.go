package rpc

import (
	"fmt"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
)

// Method names of the control channel.
const (
	MethodAddTask       = "add_task"
	MethodRemoveTask    = "remove_task"
	MethodResizeTask    = "resize_task"
	MethodListTasks     = "list_tasks"
	MethodEstimate      = "estimate"
	MethodCardinality   = "cardinality"
	MethodContains      = "contains"
	MethodReported      = "reported"
	MethodDistribution  = "distribution"
	MethodReadRegisters = "read_registers"
	MethodResources     = "resources"
	MethodReport        = "resource_report"
	MethodSplitTask     = "split_task"
	MethodGenTrace      = "gen_trace"
	MethodLoadTrace     = "load_trace"
	MethodReplay        = "replay"
	MethodStats         = "stats"
	MethodTelemetry     = "telemetry"
	MethodPing          = "ping"
	// MethodHello is the BFD-style liveness probe: a controller-side
	// session sends its state at a configured tx interval and the daemon
	// answers with its own, driving the Down/Init/Up three-way handshake
	// (see internal/netwide liveness). Unlike MethodPing it carries session
	// state, so both ends learn not just "reachable" but "the peer has seen
	// my recent hellos" — and a restarted daemon is unmasked immediately by
	// its fresh session state and changed incarnation.
	MethodHello = "hello"
	// MethodDebugPanic is an operator fault drill: the handler panics on
	// purpose so deployments can verify the daemon's panic containment
	// (the panic becomes an error Response; the daemon keeps serving).
	MethodDebugPanic = "debug_panic"
)

// AddTaskParams carries a task spec. WantID, when positive, pins the
// assigned task ID (controlplane.AddTaskAt) — the reconciler's idempotent
// re-deploy path, which must reproduce the mirror's ID on a restarted
// daemon even across gaps left by removals.
type AddTaskParams struct {
	Spec   controlplane.TaskSpec `json:"spec"`
	WantID int                   `json:"want_id,omitempty"`
}

// Liveness session states on the wire (the BFD-style three-way handshake
// values; AdminDown is not modeled — a closed session simply stops
// probing).
const (
	HelloStateDown = 0
	HelloStateInit = 1
	HelloStateUp   = 2
)

// HelloStateString renders a wire-level session state.
func HelloStateString(s int) string {
	switch s {
	case HelloStateDown:
		return "down"
	case HelloStateInit:
		return "init"
	case HelloStateUp:
		return "up"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// HelloParams is one liveness probe. Session is the sender's discriminator
// (unique per session instance, so a restarted controller starts a fresh
// handshake instead of inheriting stale daemon-side state); State is the
// sender's current session state; TxIntervalNs advertises the sender's tx
// cadence so the daemon can garbage-collect sessions that stopped probing.
type HelloParams struct {
	Session      string `json:"session"`
	State        int    `json:"state"`
	TxIntervalNs int64  `json:"tx_interval_ns,omitempty"`
}

// HelloResult answers a probe with the daemon's session state after
// processing the received state (the other half of the three-way
// handshake). Incarnation identifies this daemon process instance: it
// changes when the daemon restarts, so a controller that sees a new
// incarnation knows the daemon's tasks are gone even if the restart fell
// between two probes. Tasks is the deployed task count — a cheap
// convergence signal for fleet status displays.
type HelloResult struct {
	State       int   `json:"state"`
	Incarnation int64 `json:"incarnation"`
	UptimeNs    int64 `json:"uptime_ns"`
	Tasks       int   `json:"tasks"`
	Sessions    int   `json:"sessions"`
}

// TaskResult describes a deployed task.
type TaskResult struct {
	ID          int           `json:"id"`
	Name        string        `json:"name"`
	Algorithm   string        `json:"algorithm"`
	D           int           `json:"d"`
	Groups      []int         `json:"groups"`
	Buckets     int           `json:"buckets"`
	MemoryBytes int           `json:"memory_bytes"`
	Delay       time.Duration `json:"deploy_delay_ns"`
}

// TaskIDParams addresses an existing task.
type TaskIDParams struct {
	ID int `json:"id"`
}

// ResizeParams changes a task's memory.
type ResizeParams struct {
	ID         int `json:"id"`
	NewBuckets int `json:"new_buckets"`
}

// KeyParams addresses a task and a canonical flow key.
type KeyParams struct {
	ID  int    `json:"id"`
	Key []byte `json:"key"` // packet.CanonicalKey bytes
}

// CandidatesParams addresses a task and candidate keys for detection.
type CandidatesParams struct {
	ID         int      `json:"id"`
	Candidates [][]byte `json:"candidates"`
}

// EstimateResult is a scalar estimate.
type EstimateResult struct {
	Value float64 `json:"value"`
}

// BoolResult is a boolean answer.
type BoolResult struct {
	Value bool `json:"value"`
}

// ReportedResult lists the detected keys.
type ReportedResult struct {
	Keys [][]byte `json:"keys"`
}

// DistributionResult is an estimated flow-size distribution plus entropy.
type DistributionResult struct {
	Sizes   []uint64  `json:"sizes"`
	Counts  []float64 `json:"counts"`
	Entropy float64   `json:"entropy"`
}

// RegistersResult is a raw register readout (one slice per CMU row).
type RegistersResult struct {
	Rows [][]uint32 `json:"rows"`
}

// ResourcesResult reports free memory per CMU and deployed task count.
type ResourcesResult struct {
	FreeBuckets [][]int `json:"free_buckets"`
	Tasks       int     `json:"tasks"`
}

// SplitResult reports the two subtasks a split produced.
type SplitResult struct {
	Lo TaskResult `json:"lo"`
	Hi TaskResult `json:"hi"`
}

// LoadTraceParams points the daemon at a binary trace file on its local
// filesystem (the trafficgen output format).
type LoadTraceParams struct {
	Path string `json:"path"`
}

// ReportResult carries the per-group occupancy report.
type ReportResult struct {
	Groups []controlplane.GroupReport `json:"groups"`
}

// GenTraceParams synthesizes a workload inside the daemon.
type GenTraceParams struct {
	Flows   int     `json:"flows"`
	Packets int     `json:"packets"`
	ZipfS   float64 `json:"zipf_s"`
	Seed    int64   `json:"seed"`
}

// ReplayParams pushes packets from the loaded trace through the pipeline.
type ReplayParams struct {
	Packets int `json:"packets"` // 0 = whole trace
}

// ReplayResult reports how many packets were processed.
type ReplayResult struct {
	Processed int `json:"processed"`
}

// StatsResult reports daemon counters.
type StatsResult struct {
	PacketsProcessed uint64 `json:"packets_processed"`
	TracePackets     int    `json:"trace_packets"`
	Tasks            int    `json:"tasks"`
}

// keyFromBytes converts wire bytes into a canonical key.
func keyFromBytes(b []byte) packet.CanonicalKey {
	var k packet.CanonicalKey
	copy(k[:], b)
	return k
}
