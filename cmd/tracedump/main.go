// Command tracedump summarizes a binary trace file (the trafficgen output
// format): packet/flow counts, duration, and heavy-tail statistics — the
// quick look an operator takes before sizing measurement tasks.
//
// Files are mmapped when the platform allows (internal/mmtrace) and
// streamed through trace.Reader.ReadBatch otherwise; either way the
// summary is computed incrementally from a small reusable batch, so a
// multi-gigabyte trace never needs to fit in memory twice. A file that
// ends mid-record is summarized up to the damage, with a warning naming
// the truncated record.
//
// Usage:
//
//	tracedump trace.fmt [more.fmt ...]
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"flymon/internal/mmtrace"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

const batchSize = 4096

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracedump <trace.fmt> [...]")
		os.Exit(2)
	}
	buf := make([]packet.Packet, batchSize)
	for _, path := range os.Args[1:] {
		sum, err := summarize(path, buf)
		if err != nil {
			log.Fatalf("tracedump: %s: %v", path, err)
		}
		fmt.Printf("== %s ==\n", path)
		sum.Render(os.Stdout)
		fmt.Println()
	}
}

// summarize prefers the mmap fast path and falls back to the streaming
// reader when the file cannot be mapped or even opened by mmtrace (e.g. a
// non-regular file). Truncation is a warning, not an error: the intact
// prefix is still worth summarizing.
func summarize(path string, buf []packet.Packet) (trace.Summary, error) {
	t, err := mmtrace.Open(path)
	if err != nil && t == nil {
		if errors.Is(err, trace.ErrBadMagic) {
			return trace.Summary{}, err
		}
		return summarizeStream(path, buf)
	}
	defer t.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: warning: %s: %v (summarizing the intact prefix)\n", path, err)
	}
	acc := trace.NewSummarizer()
	for off := 0; off < t.Frames(); off += len(buf) {
		n, _ := t.DecodeBatch(off, buf)
		acc.Add(buf[:n])
	}
	return acc.Summary(), nil
}

func summarizeStream(path string, buf []packet.Packet) (trace.Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Summary{}, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return trace.Summary{}, err
	}
	acc := trace.NewSummarizer()
	for {
		n, err := r.ReadBatch(buf)
		acc.Add(buf[:n])
		if err == io.EOF {
			return acc.Summary(), nil
		}
		if err != nil {
			var te *trace.TruncatedError
			if errors.As(err, &te) {
				fmt.Fprintf(os.Stderr, "tracedump: warning: %s: %v (summarizing the intact prefix)\n", path, err)
				return acc.Summary(), nil
			}
			return trace.Summary{}, err
		}
	}
}
