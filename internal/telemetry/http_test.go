package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// scrape fetches a path from the admin handler and returns body + status.
func scrape(t *testing.T, h http.Handler, path string) (string, *http.Response) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(body), resp
}

func TestMetricsEndpointWireFormat(t *testing.T) {
	r := NewRegistry()
	r.SetVersion(7)
	r.Rule(RuleKey{Group: 1, CMU: 2, Task: 3}, RuleMeta{Op: "CondADD"}).Add(0, 41)
	r.MutationLatency.Observe(3 * time.Millisecond)
	r.RPCServer.Endpoint("add_task").Requests.Add(5)
	r.Journal.Record(Event{Kind: "deploy", Task: 3, OK: true})

	body, resp := scrape(t, r.Handler(), "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	// Gauge: value line preceded by HELP/TYPE in the right order.
	gaugeIdx := strings.Index(body, "# TYPE flymon_snapshot_version gauge")
	valIdx := strings.Index(body, "flymon_snapshot_version 7")
	if gaugeIdx < 0 || valIdx < 0 || valIdx < gaugeIdx {
		t.Fatalf("gauge wire format broken:\n%s", body)
	}

	// Counter with labels.
	if !strings.Contains(body, `flymon_rule_hits_total{group="1",cmu="2",task="3",op="CondADD"} 41`) {
		t.Fatalf("labeled counter missing:\n%s", body)
	}
	if !strings.Contains(body, `flymon_rpc_requests_total{side="server",method="add_task"} 5`) {
		t.Fatalf("rpc counter missing:\n%s", body)
	}
	if !strings.Contains(body, "flymon_reconfig_events_total 1") {
		t.Fatalf("journal counter missing:\n%s", body)
	}

	// Histogram: TYPE histogram, cumulative buckets ending at +Inf, then
	// _sum and _count, with bucket counts that add up.
	if !strings.Contains(body, "# TYPE flymon_reconfig_latency_seconds histogram") {
		t.Fatalf("histogram TYPE missing:\n%s", body)
	}
	if !strings.Contains(body, `flymon_reconfig_latency_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("+Inf bucket missing:\n%s", body)
	}
	if !strings.Contains(body, "flymon_reconfig_latency_seconds_count 1") {
		t.Fatalf("histogram count missing:\n%s", body)
	}
	// A 3ms observation lands in the 2^22 ns = 4.194304e-3 s bucket; the
	// cumulative count at that le must already be 1.
	if !strings.Contains(body, `flymon_reconfig_latency_seconds_bucket{le="0.004194304"} 1`) {
		t.Fatalf("cumulative bucket missing:\n%s", body)
	}
}

func TestMetricsEndpointExternalWriters(t *testing.T) {
	r := NewRegistry()
	r.AddMetricsWriter(WriteBuildInfoMetric)
	r.AddMetricsWriter(func(w io.Writer) { io.WriteString(w, "flymon_custom_total 9\n") })

	body, _ := scrape(t, r.Handler(), "/metrics")
	if !strings.Contains(body, "flymon_build_info{version=") {
		t.Fatalf("build info metric missing:\n%s", body)
	}
	if !strings.Contains(body, "flymon_custom_total 9") {
		t.Fatalf("external writer output missing:\n%s", body)
	}
}

func TestDebugEventsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Journal.Record(Event{Kind: "deploy", Task: 1, Detail: "cms", OK: true})
	r.Journal.Record(Event{Kind: "remove", Task: 1, OK: false, Err: "gone"})

	body, resp := scrape(t, r.Handler(), "/debug/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got struct {
		Total   uint64  `json:"total"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("decoding: %v\n%s", err, body)
	}
	if got.Total != 2 || got.Dropped != 0 || len(got.Events) != 2 {
		t.Fatalf("events payload: total=%d dropped=%d n=%d", got.Total, got.Dropped, len(got.Events))
	}
	if got.Events[0].Kind != "deploy" || got.Events[1].Err != "gone" {
		t.Fatalf("event content lost: %+v", got.Events)
	}
	// Sequence numbers are assigned by the journal, monotonically.
	if got.Events[1].Seq <= got.Events[0].Seq {
		t.Fatalf("sequence not monotonic: %d then %d", got.Events[0].Seq, got.Events[1].Seq)
	}
}

func TestDebugEventsReportsDrops(t *testing.T) {
	r := &Registry{Journal: NewJournal(4), rules: map[RuleKey]*RuleCounter{}, start: time.Now()}
	for i := 0; i < 10; i++ {
		r.Journal.Record(Event{Kind: "deploy", Task: i})
	}
	body, _ := scrape(t, r.Handler(), "/debug/events")
	var got struct {
		Total   uint64 `json:"total"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if got.Total != 10 || got.Dropped != 6 {
		t.Fatalf("drop accounting: total=%d dropped=%d, want 10/6", got.Total, got.Dropped)
	}
	// The same drop counter must surface on /metrics (satellite: bounded
	// rings never discard silently).
	mbody, _ := scrape(t, r.Handler(), "/metrics")
	if !strings.Contains(mbody, "flymon_reconfig_events_dropped_total 6") {
		t.Fatalf("journal drops missing from /metrics:\n%s", mbody)
	}
}

func TestAdminIndexAnd404(t *testing.T) {
	r := NewRegistry()
	body, resp := scrape(t, r.Handler(), "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", resp.StatusCode, body)
	}
	_, resp = scrape(t, r.Handler(), "/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", resp.StatusCode)
	}
}
