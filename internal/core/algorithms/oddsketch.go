package algorithms

import (
	"fmt"
	"math/bits"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
	"flymon/internal/sketch"
)

// OddSketchTask is FlyMon-OddSketch, the paper's §6 extension exercising
// the reserved fourth stateful-operation slot: a parity bitmap updated with
// the XOR operation, with bit packing exactly as in the Bloom-filter
// composition (key → bucket, one-hot sub-key → bit). Two tasks over the
// same geometry support traffic-set similarity queries.
//
// Every packet toggles its flow's bit, so parity tracks the per-flow
// PACKET count unless the task filter admits each flow once; for set
// semantics, feed deduplicated traffic (e.g. SYN-only filters) or compare
// symmetric differences of per-epoch first-packet streams. The comparison
// helpers below operate on raw register state, so both uses are possible.
type OddSketchTask struct {
	Group  *core.Group
	TaskID int
	Unit   int
	CMU    int
	Mem    core.MemRange
	Method core.TranslationMethod
	width  int
}

// InstallOddSketch installs a FlyMon-OddSketch task on group g over `key`.
// The optional trailing argument selects the CMU.
func InstallOddSketch(g *core.Group, taskID int, filter packet.Filter, key packet.KeySpec,
	mem core.MemRange, at ...int) (*OddSketchTask, error) {
	cmu := baseCMU(at)
	if cmu < 0 || cmu >= g.CMUs() {
		return nil, fmt.Errorf("algorithms: odd-sketch CMU index %d out of range", cmu)
	}
	if mem.Buckets == 0 {
		mem = core.MemRange{Base: 0, Buckets: g.CMU(cmu).Register().Size()}
	}
	unit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	width := g.CMU(cmu).Register().BitWidth()
	t := &OddSketchTask{Group: g, TaskID: taskID, Unit: unit, CMU: cmu,
		Mem: mem, Method: core.TCAMBased, width: width}
	rule := &core.Rule{
		TaskID:      taskID,
		Filter:      filter,
		Key:         core.FullKey(unit),
		P1:          core.CompressedKey(core.FullKey(unit).SubRange(16, 32)),
		P2:          core.Const(0),
		Prep:        core.Transform{Kind: core.TransformBitSelect, Width: width},
		Mem:         mem,
		Translation: t.Method,
		Op:          dataplane.OpXor,
	}
	if err := g.CMU(cmu).InstallRule(rule); err != nil {
		return nil, err
	}
	return t, nil
}

// OnesCount returns the number of odd-parity bits in the task's bitmap.
func (t *OddSketchTask) OnesCount() (int, error) {
	buckets, err := t.Group.CMU(t.CMU).ReadTask(t.TaskID)
	if err != nil {
		return 0, err
	}
	ones := 0
	for _, b := range buckets {
		ones += bits.OnesCount32(b)
	}
	return ones, nil
}

// SymmetricDifference estimates the symmetric difference between this
// task's set and another same-geometry task's set.
func (t *OddSketchTask) SymmetricDifference(other *OddSketchTask) (float64, error) {
	if t.Mem.Buckets != other.Mem.Buckets || t.width != other.width {
		return 0, fmt.Errorf("algorithms: odd-sketch geometries differ")
	}
	// Comparable sketches must share the hash mapping: same group (hash
	// polynomials are per-group) and same compression unit.
	if t.Group != other.Group || t.Unit != other.Unit {
		return 0, fmt.Errorf("algorithms: odd-sketch tasks must share a group and compression unit to be comparable")
	}
	a, err := t.Group.CMU(t.CMU).ReadTask(t.TaskID)
	if err != nil {
		return 0, err
	}
	b, err := other.Group.CMU(other.CMU).ReadTask(other.TaskID)
	if err != nil {
		return 0, err
	}
	ones := 0
	for i := range a {
		ones += bits.OnesCount32(a[i] ^ b[i])
	}
	return sketch.OddSketchDifferenceFromOnes(ones, t.Mem.Buckets*t.width), nil
}

// MemoryBytes returns the register memory the task occupies.
func (t *OddSketchTask) MemoryBytes() int { return t.Mem.Buckets * t.width / 8 }

// Uninstall removes the task's rule.
func (t *OddSketchTask) Uninstall() { t.Group.CMU(t.CMU).RemoveRule(t.TaskID) }
