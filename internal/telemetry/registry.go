package telemetry

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// RuleKey identifies one installed rule by its physical placement: pipeline
// group, CMU within the group, and the owning task. The same task can own
// rules in several CMUs (a D-row sketch) and a CMU can host rules of many
// tasks, so all three coordinates are needed.
type RuleKey struct {
	Group int `json:"group"`
	CMU   int `json:"cmu"`
	Task  int `json:"task"`
}

// RuleMeta is what the compiler knew about the rule when it last installed
// it — enough for a scrape to label the counter without reaching back into
// the pipeline.
type RuleMeta struct {
	Op      string `json:"op"`      // stateful operation name (CondADD, MAX, ...)
	Prep    bool   `json:"prep"`    // has a preparation-stage transform
	Spliced bool   `json:"spliced"` // lives in a recirculation-fed group
	Sharded bool   `json:"sharded"` // routed to per-worker register lanes
	Derived bool   `json:"derived"` // hits derived from the snapshot packet counter
}

// RuleCounter is the durable hit counter for one rule. It survives snapshot
// recompiles: the compiler re-attaches the same counter (by RuleKey) to each
// new snapshot, so counts accumulate across reconfigurations for as long as
// the task lives.
//
// Two write paths feed it. Rules that need per-execution counting add into
// the striped Counter (via context-local accumulators flushed in batches).
// Rules the compiler proved execute for *every* (recirculated) packet —
// first in their CMU program, match-all, not probability-gated — skip
// per-execution work entirely; their hits are settled in bulk from the
// snapshot's packet counter when the snapshot retires (Settle).
type RuleCounter struct {
	Key  RuleKey  `json:"key"`
	Meta RuleMeta `json:"meta"`

	hits    Counter
	settled atomic.Uint64
}

// Add records n live hits on the given stripe.
func (rc *RuleCounter) Add(stripe uint32, n uint64) { rc.hits.Add(stripe, n) }

// Settle folds n derived hits (from a retiring snapshot's packet counter)
// into the durable total.
func (rc *RuleCounter) Settle(n uint64) {
	if n != 0 {
		rc.settled.Add(n)
	}
}

// Total returns the rule's accumulated hits: striped live counts plus
// settled derived counts.
func (rc *RuleCounter) Total() uint64 { return rc.hits.Load() + rc.settled.Load() }

// LiveSample is the not-yet-settled contribution of the currently published
// snapshot, read without quiescing the data plane: its packet counters plus
// the derived-rule lists they stand in for. The fold adds Packets to every
// counter in Derived and Recirculated to every counter in DerivedSpliced.
type LiveSample struct {
	Packets        uint64
	Recirculated   uint64
	Digests        uint64 // compression-stage digests implied by the counts
	Derived        []*RuleCounter
	DerivedSpliced []*RuleCounter
}

// DataPlaneSource is implemented by the controller: it quiesces what must be
// quiesced (draining register lanes, settling retired snapshots) and folds
// the data-plane section of a Report. The Registry calls it at scrape time
// when one is attached; without a source the Registry reports settled
// counters only.
type DataPlaneSource interface {
	TelemetryDataPlane() DataPlane
}

// RuleStat is one rule's folded counter in a report.
type RuleStat struct {
	RuleKey
	Op      string `json:"op"`
	Prep    bool   `json:"prep,omitempty"`
	Spliced bool   `json:"spliced,omitempty"`
	Sharded bool   `json:"sharded,omitempty"`
	Hits    uint64 `json:"hits"`
}

// RegisterGauge is one CMU register's occupancy/saturation gauge set.
type RegisterGauge struct {
	Group    int    `json:"group"`
	CMU      int    `json:"cmu"`
	Buckets  int    `json:"buckets"`
	BitWidth int    `json:"bit_width"`
	Occupied int    `json:"occupied"` // non-zero buckets at scrape time
	Clamps   uint64 `json:"clamps"`   // CondADD saturation clamp events
	Accesses uint64 `json:"accesses"` // stateful operations applied
	Lanes    int    `json:"lanes"`    // sharded write lanes (0 = shared CAS)
}

// StageStats counts activity per CMU stage: Compression digests computed,
// Initialization-stage rule executions, Preparation-stage transforms run,
// and stateful Operations committed (initializations minus prep drops).
type StageStats struct {
	Compression    uint64 `json:"compression"`
	Initialization uint64 `json:"initialization"`
	Preparation    uint64 `json:"preparation"`
	Operation      uint64 `json:"operation"`
}

// DataPlane is the data-plane section of a Report.
type DataPlane struct {
	Packets       uint64          `json:"packets"`
	Recirculated  uint64          `json:"recirculated"`
	Stages        StageStats      `json:"stages"`
	Rules         []RuleStat      `json:"rules,omitempty"`
	Registers     []RegisterGauge `json:"registers,omitempty"`
	ShardedRules  int             `json:"sharded_rules"`
	FallbackRules int             `json:"fallback_rules"`
}

// ControlPlane is the control-plane section of a Report.
type ControlPlane struct {
	SnapshotVersion uint64            `json:"snapshot_version"`
	Events          []Event           `json:"events,omitempty"`
	EventsTotal     uint64            `json:"events_total"`
	EventsDropped   uint64            `json:"events_dropped"`
	MutationLatency HistogramSnapshot `json:"mutation_latency"`
	DrainLatency    HistogramSnapshot `json:"drain_latency"`
}

// Report is a full scrape of the registry, serializable over the control
// channel (flymonctl stats fetches one per switch) and renderable as
// Prometheus text (WriteMetrics).
type Report struct {
	UptimeNs     int64        `json:"uptime_ns"`
	DataPlane    DataPlane    `json:"data_plane"`
	ControlPlane ControlPlane `json:"control_plane"`
	RPCClient    RPCReport    `json:"rpc_client"`
	RPCServer    RPCReport    `json:"rpc_server"`
	Fleet        FleetReport  `json:"fleet"`
	// Replay is present once a trace replay has been attached
	// (SetReplaySource); it stays after the replay ends, latched at the
	// final counters.
	Replay *ReplayReport `json:"replay,omitempty"`
}

// Registry is the root object every layer hangs its instruments off. One
// registry serves one daemon (or one test); it is passed through
// controlplane.Config, rpc server/client options, and netwide FleetOptions.
// The zero value is not usable — call NewRegistry.
type Registry struct {
	start time.Time

	mu    sync.Mutex
	rules map[RuleKey]*RuleCounter
	order []RuleKey

	digests   atomic.Uint64 // settled compression-stage digest count
	prepDrops Counter       // preparation-stage drops (coupon miss, interval gate)
	version   atomic.Uint64 // current snapshot version, mirrored by the controller

	Journal         *Journal
	MutationLatency Histogram
	DrainLatency    Histogram

	RPCClient RPCStats
	RPCServer RPCStats
	Fleet     FleetStats

	srcMu  sync.Mutex
	source DataPlaneSource

	extMu sync.Mutex
	ext   []func(io.Writer)

	replay replayHook
}

// AddMetricsWriter registers an extra Prometheus-text section appended to
// every /metrics scrape after the registry's own families. This is how
// planes the registry does not know about (the tracer's span histograms,
// the process build-info line) join the exposition without telemetry
// importing them.
func (r *Registry) AddMetricsWriter(fn func(io.Writer)) {
	r.extMu.Lock()
	r.ext = append(r.ext, fn)
	r.extMu.Unlock()
}

// writeExternal runs the registered extra metric writers.
func (r *Registry) writeExternal(w io.Writer) {
	r.extMu.Lock()
	ext := make([]func(io.Writer), len(r.ext))
	copy(ext, r.ext)
	r.extMu.Unlock()
	for _, fn := range ext {
		fn(w)
	}
}

// NewRegistry builds an empty registry with a DefaultJournalSize journal.
func NewRegistry() *Registry {
	return &Registry{
		start:   time.Now(),
		rules:   make(map[RuleKey]*RuleCounter),
		Journal: NewJournal(DefaultJournalSize),
	}
}

// Rule returns the durable counter for key, creating it on first install and
// refreshing its metadata (op/prep/sharded can change when a task is
// reconfigured in place).
func (r *Registry) Rule(key RuleKey, meta RuleMeta) *RuleCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	rc := r.rules[key]
	if rc == nil {
		rc = &RuleCounter{Key: key}
		r.rules[key] = rc
		r.order = append(r.order, key)
	}
	rc.Meta = meta
	return rc
}

// DropRule forgets a rule's counter (the task was removed). Hits recorded so
// far disappear from subsequent reports; per-task counters do not outlive
// their task, matching how hardware rule counters free with the rule.
func (r *Registry) DropRule(key RuleKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.rules[key]; !ok {
		return
	}
	delete(r.rules, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// DropTask forgets every rule counter the task owns, across all groups and
// CMUs — the removal path's bulk DropRule.
func (r *Registry) DropTask(task int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.order[:0]
	for _, k := range r.order {
		if k.Task == task {
			delete(r.rules, k)
		} else {
			kept = append(kept, k)
		}
	}
	r.order = kept
}

// PrepDrops is the striped preparation-stage drop counter (flushed by the
// data-plane contexts alongside rule hits).
func (r *Registry) PrepDrops() *Counter { return &r.prepDrops }

// SettleDigests folds n compression-stage digests from a retiring snapshot.
func (r *Registry) SettleDigests(n uint64) {
	if n != 0 {
		r.digests.Add(n)
	}
}

// SetVersion records the current snapshot version.
func (r *Registry) SetVersion(v uint64) { r.version.Store(v) }

// Version returns the last recorded snapshot version.
func (r *Registry) Version() uint64 { return r.version.Load() }

// SetSource attaches the data-plane folder (normally the controller).
func (r *Registry) SetSource(s DataPlaneSource) {
	r.srcMu.Lock()
	r.source = s
	r.srcMu.Unlock()
}

// FoldDataPlane builds the rule/stage section of a DataPlane from the
// durable counters plus a live (unsettled) sample of the published snapshot.
// The caller — normally the controller, holding whatever quiescence it wants
// — fills in packets, registers, and sharding totals afterwards.
func (r *Registry) FoldDataPlane(live LiveSample) DataPlane {
	liveMain := make(map[*RuleCounter]bool, len(live.Derived))
	for _, rc := range live.Derived {
		liveMain[rc] = true
	}
	liveSpl := make(map[*RuleCounter]bool, len(live.DerivedSpliced))
	for _, rc := range live.DerivedSpliced {
		liveSpl[rc] = true
	}

	r.mu.Lock()
	counters := make([]*RuleCounter, 0, len(r.order))
	for _, k := range r.order {
		counters = append(counters, r.rules[k])
	}
	r.mu.Unlock()

	var dp DataPlane
	drops := r.prepDrops.Load()
	for _, rc := range counters {
		hits := rc.Total()
		if liveMain[rc] {
			hits += live.Packets
		} else if liveSpl[rc] {
			hits += live.Recirculated
		}
		dp.Rules = append(dp.Rules, RuleStat{
			RuleKey: rc.Key,
			Op:      rc.Meta.Op,
			Prep:    rc.Meta.Prep,
			Spliced: rc.Meta.Spliced,
			Sharded: rc.Meta.Sharded,
			Hits:    hits,
		})
		dp.Stages.Initialization += hits
		if rc.Meta.Prep {
			dp.Stages.Preparation += hits
		}
	}
	dp.Stages.Compression = r.digests.Load() + live.Digests
	// Operations committed = initializations minus preparation-stage drops
	// (a dropped packet ran C, I and P but never reached the register).
	dp.Stages.Operation = dp.Stages.Initialization - drops
	return dp
}

// Report assembles a full scrape. With a DataPlaneSource attached the
// data-plane section is folded under the controller's quiescence; otherwise
// it reflects settled counters only.
func (r *Registry) Report() Report {
	r.srcMu.Lock()
	src := r.source
	r.srcMu.Unlock()
	var dp DataPlane
	if src != nil {
		dp = src.TelemetryDataPlane()
	} else {
		dp = r.FoldDataPlane(LiveSample{})
	}
	var replay *ReplayReport
	if rep, ok := r.replay.report(); ok {
		replay = &rep
	}
	return Report{
		UptimeNs:  time.Since(r.start).Nanoseconds(),
		Replay:    replay,
		DataPlane: dp,
		ControlPlane: ControlPlane{
			SnapshotVersion: r.version.Load(),
			Events:          r.Journal.Events(),
			EventsTotal:     r.Journal.Total(),
			EventsDropped:   r.Journal.Dropped(),
			MutationLatency: r.MutationLatency.Snapshot(),
			DrainLatency:    r.DrainLatency.Snapshot(),
		},
		RPCClient: r.RPCClient.Snapshot(),
		RPCServer: r.RPCServer.Snapshot(),
		Fleet:     r.Fleet.Snapshot(),
	}
}
