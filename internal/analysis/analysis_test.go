package analysis

import (
	"math"
	"math/rand"
	"testing"
)

// --- Counter Braids decoder ---

func TestCBDecodeExactOnSparseInstance(t *testing.T) {
	// 20 items, 64 counters, 3 edges each: heavily over-provisioned, so
	// message passing must converge to the exact values.
	rng := rand.New(rand.NewSource(1))
	const items, counters = 20, 64
	truth := make([]uint64, items)
	edges := make([][]uint32, items)
	sums := make([]uint64, counters)
	for i := range truth {
		truth[i] = uint64(rng.Intn(1000) + 1)
		e := make([]uint32, 3)
		seen := map[uint32]bool{}
		for j := range e {
			for {
				c := uint32(rng.Intn(counters))
				if !seen[c] {
					seen[c] = true
					e[j] = c
					break
				}
			}
			sums[e[j]] += truth[i]
		}
		edges[i] = e
	}
	got := CBDecode(sums, edges, 12)
	for i := range truth {
		if got[i] != truth[i] {
			t.Fatalf("item %d decoded %d, truth %d", i, got[i], truth[i])
		}
	}
}

func TestCBDecodeSingleItemPerCounter(t *testing.T) {
	// One item per counter decodes trivially.
	sums := []uint64{5, 9, 0}
	edges := [][]uint32{{0}, {1}}
	got := CBDecode(sums, edges, 4)
	if got[0] != 5 || got[1] != 9 {
		t.Fatalf("decode = %v", got)
	}
}

func TestCBDecodeSharedCounterUpperBounds(t *testing.T) {
	// Two items sharing every counter cannot be separated; the decoder
	// must return values bounded by the counter sums (min-style), never
	// exceed them.
	sums := []uint64{30, 30}
	edges := [][]uint32{{0, 1}, {0, 1}}
	got := CBDecode(sums, edges, 6)
	for i, v := range got {
		if v > 30 {
			t.Fatalf("item %d decoded %d > counter sum", i, v)
		}
	}
}

func TestCBDecodeEmpty(t *testing.T) {
	if got := CBDecode(nil, nil, 3); len(got) != 0 {
		t.Fatal("empty instance must decode to empty")
	}
	got := CBDecode([]uint64{7}, [][]uint32{{}}, 3)
	if got[0] != 0 {
		t.Fatal("item with no edges decodes to 0")
	}
}

func TestCBDecodeNeverNegative(t *testing.T) {
	// Adversarial sums (zeros with nonzero neighbours) must not produce
	// negative (wrapped) estimates.
	sums := []uint64{0, 100, 0}
	edges := [][]uint32{{0, 1}, {1, 2}, {0, 2}}
	got := CBDecode(sums, edges, 8)
	for i, v := range got {
		if v > 100 {
			t.Fatalf("item %d decoded %d; must stay within counter mass", i, v)
		}
	}
}

// --- MRAC EM ---

func TestMRACDistributionUniformSingletons(t *testing.T) {
	// 1000 flows of size 1 spread over 4096 counters: EM must attribute
	// nearly all mass to size 1.
	rng := rand.New(rand.NewSource(2))
	counters := make([]uint32, 4096)
	for i := 0; i < 1000; i++ {
		counters[rng.Intn(len(counters))]++
	}
	dist := MRACDistribution(counters, 64, 8)
	var total, ones float64
	for s, n := range dist {
		total += n
		if s == 1 {
			ones += n
		}
	}
	if total < 900 || total > 1100 {
		t.Fatalf("total flows estimated %.0f, want ≈ 1000", total)
	}
	if ones/total < 0.9 {
		t.Fatalf("size-1 mass = %.2f, want ≥ 0.9", ones/total)
	}
}

func TestMRACDistributionTwoPointMixture(t *testing.T) {
	// Half the flows have size 1, half size 10: EM must keep the two
	// modes separated.
	rng := rand.New(rand.NewSource(3))
	counters := make([]uint32, 8192)
	for i := 0; i < 500; i++ {
		counters[rng.Intn(len(counters))]++
		counters[rng.Intn(len(counters))] += 10
	}
	dist := MRACDistribution(counters, 64, 10)
	if dist[1] < 300 {
		t.Fatalf("size-1 flows = %.0f, want ≥ 300", dist[1])
	}
	if dist[10] < 300 {
		t.Fatalf("size-10 flows = %.0f, want ≥ 300", dist[10])
	}
	// Collision artifact sizes (11 = 1+10) must stay a small minority.
	if dist[11] > 100 {
		t.Fatalf("collision size 11 over-attributed: %.0f", dist[11])
	}
}

func TestMRACDistributionHeavyTail(t *testing.T) {
	// Counters above maxSize are treated as isolated heavy flows.
	counters := []uint32{5000, 2, 1, 0, 0, 0, 0, 0}
	dist := MRACDistribution(counters, 100, 4)
	if dist[5000] != 1 {
		t.Fatalf("heavy counter must surface as one flow of its size, got %v", dist[5000])
	}
}

func TestMRACDistributionEmpty(t *testing.T) {
	if dist := MRACDistribution(nil, 10, 3); dist != nil {
		t.Fatal("nil counters → nil distribution")
	}
	dist := MRACDistribution(make([]uint32, 64), 10, 3)
	if len(dist) != 0 {
		t.Fatal("all-zero counters → empty distribution")
	}
}

func TestMRACDistributionMassConservation(t *testing.T) {
	// The estimated total packet mass should be near the true mass.
	rng := rand.New(rand.NewSource(4))
	counters := make([]uint32, 4096)
	var truePackets float64
	for i := 0; i < 800; i++ {
		size := uint32(rng.Intn(20) + 1)
		counters[rng.Intn(len(counters))] += size
		truePackets += float64(size)
	}
	dist := MRACDistribution(counters, 128, 8)
	var estPackets float64
	for s, n := range dist {
		estPackets += float64(s) * n
	}
	if math.Abs(estPackets-truePackets)/truePackets > 0.1 {
		t.Fatalf("packet mass drifted: est %.0f vs true %.0f", estPackets, truePackets)
	}
}

func TestHeavyChangers(t *testing.T) {
	prev := map[string]uint64{"a": 100, "b": 500, "c": 50}
	cur := map[string]uint64{"a": 105, "b": 100, "d": 900}
	got := HeavyChangers(prev, cur, 300)
	if !got["b"] || !got["d"] {
		t.Fatalf("changers = %v, want b (−400) and d (+900)", got)
	}
	if got["a"] || got["c"] {
		t.Fatalf("small changes flagged: %v", got)
	}
	if len(HeavyChangers[string](nil, nil, 1)) != 0 {
		t.Fatal("empty epochs have no changers")
	}
}
