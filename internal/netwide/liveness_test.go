package netwide

import (
	"testing"
	"time"

	"flymon/internal/rpc"
)

// The session state machine is pure: these tests drive it with an explicit
// clock and never sleep.

func smOptions() LivenessOptions {
	return LivenessOptions{
		TxInterval:    100 * time.Millisecond,
		DetectMult:    3,
		FlapThreshold: 3,
		Seed:          1,
	}.withDefaults()
}

func smClock() (func() time.Time, func(time.Duration)) {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time { return t }, func(d time.Duration) { t = t.Add(d) }
}

func TestSessionSMThreeWayHandshake(t *testing.T) {
	sm := newSessionSM(smOptions())
	now, tick := smClock()
	if sm.state != SessionDown {
		t.Fatalf("initial state = %v, want down", sm.state)
	}

	// Remote answers Down (it had never heard of us): we move to Init.
	ev := sm.onReply(rpc.HelloStateDown, 7, 0, now())
	if !ev.StateChanged || sm.state != SessionInit {
		t.Fatalf("after remote down: state = %v (ev %+v), want init", sm.state, ev)
	}
	if ev.ReportedUp {
		t.Fatal("init must not report up")
	}

	// Remote saw our Init and answers Up (or Init): we complete to Up.
	tick(100 * time.Millisecond)
	ev = sm.onReply(rpc.HelloStateUp, 7, 0, now())
	if !ev.StateChanged || sm.state != SessionUp || !ev.ReportedUp {
		t.Fatalf("after remote up: state = %v reported=%v, want up/true", sm.state, ev.ReportedUp)
	}
	if sm.transitions != 2 {
		t.Fatalf("transitions = %d, want 2", sm.transitions)
	}
}

func TestSessionSMDownPlusRemoteInitGoesUp(t *testing.T) {
	sm := newSessionSM(smOptions())
	now, _ := smClock()
	// Receiving Init means the remote sees our hellos: Up directly.
	ev := sm.onReply(rpc.HelloStateInit, 7, 0, now())
	if sm.state != SessionUp || !ev.ReportedUp {
		t.Fatalf("down + remote init: state = %v, want up", sm.state)
	}
	// But Down + remote Up stays Down: the peer must re-init first.
	sm2 := newSessionSM(smOptions())
	sm2.onReply(rpc.HelloStateUp, 7, 0, now())
	if sm2.state != SessionDown {
		t.Fatalf("down + remote up: state = %v, want down", sm2.state)
	}
}

func upSession(t *testing.T, now func() time.Time) *sessionSM {
	t.Helper()
	sm := newSessionSM(smOptions())
	sm.onReply(rpc.HelloStateDown, 7, 0, now())
	sm.onReply(rpc.HelloStateInit, 7, 0, now())
	if sm.state != SessionUp {
		t.Fatalf("handshake did not reach up: %v", sm.state)
	}
	return sm
}

func TestSessionSMDetectTimeout(t *testing.T) {
	opts := smOptions()
	now, tick := smClock()
	sm := upSession(t, now)

	// Lost probes inside the detection interval do NOT flip the state:
	// detection is time-based, so one dropped hello is not a false eject.
	tick(opts.TxInterval)
	if ev := sm.onFail(now()); ev.StateChanged || sm.state != SessionUp {
		t.Fatalf("single lost probe flipped state to %v", sm.state)
	}
	if sm.fails != 1 {
		t.Fatalf("fails = %d, want 1", sm.fails)
	}

	// Silence for the full detection interval declares Down and reports
	// the detection latency (last good reply → declaration).
	tick(2 * opts.TxInterval)
	ev := sm.onFail(now())
	if !ev.StateChanged || ev.To != SessionDown || sm.state != SessionDown {
		t.Fatalf("after detect interval: state = %v (ev %+v), want down", sm.state, ev)
	}
	if want := opts.DetectTime(); ev.DetectionTime < want {
		t.Fatalf("detection latency %v < configured detect time %v", ev.DetectionTime, want)
	}
	if !ev.ReportedChanged || ev.ReportedUp {
		t.Fatalf("down must clear reported-up: %+v", ev)
	}
}

func TestSessionSMRemoteDownResetsSession(t *testing.T) {
	now, tick := smClock()
	sm := upSession(t, now)
	// The peer answering Down while we are Up means it reset (restart or
	// session GC): restart the handshake.
	tick(time.Millisecond)
	ev := sm.onReply(rpc.HelloStateDown, 7, 0, now())
	if sm.state != SessionDown || !ev.StateChanged {
		t.Fatalf("up + remote down: state = %v, want down", sm.state)
	}
}

func TestSessionSMIncarnationChangeUnmasksRestart(t *testing.T) {
	now, tick := smClock()
	sm := upSession(t, now)
	// The daemon restarted BETWEEN probes and answers promptly from a fresh
	// process: the changed incarnation tears the session down even though
	// the reply itself looks healthy.
	tick(time.Millisecond)
	ev := sm.onReply(rpc.HelloStateUp, 9, 0, now())
	if !ev.Restarted || sm.state != SessionDown {
		t.Fatalf("incarnation change: restarted=%v state=%v, want true/down", ev.Restarted, sm.state)
	}
	if sm.incarnation != 9 {
		t.Fatalf("incarnation = %d, want 9", sm.incarnation)
	}
}

func TestSessionSMFlapDamping(t *testing.T) {
	opts := smOptions()
	now, tick := smClock()
	sm := newSessionSM(opts)

	// Flap the session FlapThreshold times inside the window: each round
	// completes the handshake, then the peer resets (answers Down).
	for i := 0; i < opts.FlapThreshold; i++ {
		sm.onReply(rpc.HelloStateDown, 7, 0, now())
		sm.onReply(rpc.HelloStateInit, 7, 0, now())
		if sm.state != SessionUp {
			t.Fatalf("flap %d: not up", i)
		}
		tick(opts.TxInterval)
		sm.onReply(rpc.HelloStateDown, 7, 0, now()) // peer reset: down again
		tick(opts.TxInterval)
	}
	// Come back up one more time: the session works, but it has flapped
	// FlapThreshold times inside the window.
	sm.onReply(rpc.HelloStateDown, 7, 0, now())
	sm.onReply(rpc.HelloStateInit, 7, 0, now())

	// The final Up is damped: state Up, but not reported.
	if sm.state != SessionUp {
		t.Fatalf("state = %v, want up", sm.state)
	}
	if !sm.damped(now()) || sm.reportedUp {
		t.Fatalf("damped=%v reportedUp=%v, want true/false", sm.damped(now()), sm.reportedUp)
	}

	// Staying Up past the hold-down releases damping on the next round.
	tick(opts.HoldDown)
	ev := sm.onReply(rpc.HelloStateUp, 7, 0, now())
	if !ev.ReportedUp || sm.damped(now()) {
		t.Fatalf("after hold-down: reported=%v damped=%v, want true/false", ev.ReportedUp, sm.damped(now()))
	}
}

func TestSessionSMSnapshotFields(t *testing.T) {
	opts := smOptions()
	now, tick := smClock()
	sm := upSession(t, now)
	tick(opts.TxInterval)
	sm.onFail(now())
	s := sm.snapshot(now())
	if s.State != SessionUp || !s.ReportedUp || s.ConsecutiveFailures != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.DetectTime != opts.DetectTime() || s.Incarnation != 7 || s.Transitions != 2 {
		t.Fatalf("snapshot detail = %+v", s)
	}
	if s.LastReply.IsZero() || s.LastTransition.IsZero() {
		t.Fatalf("snapshot timestamps missing: %+v", s)
	}
}
