package algorithms

import (
	"testing"

	"flymon/internal/core"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// TestAlgorithmLifecycles drives every installer through the full
// install → process → query → memory accounting → uninstall → reinstall
// cycle, verifying uninstall actually releases the CMUs and clears state.
func TestAlgorithmLifecycles(t *testing.T) {
	keyDstPort := packet.NewKeySpec(packet.FieldDstPort)
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 5000, Seed: 80})

	type handle interface {
		MemoryBytes() int
		Uninstall()
	}
	cases := []struct {
		name    string
		groups  int
		install func(pl *core.Pipeline) (handle, error)
	}{
		{"cms", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallCMS(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil)
		}},
		{"mrac", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallMRAC(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, nil)
		}},
		{"bloom", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallBloom(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, 3, true, nil)
		}},
		{"linearcounting", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallLinearCounting(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, nil)
		}},
		{"hll", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallHLL(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.MemRange{})
		}},
		{"beaucoup", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallBeauCoup(pl.Group(0), 1, packet.MatchAll, packet.KeyDstIP, packet.KeySrcIP, 100, 3, nil)
		}},
		{"beaucoup-portscan", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallBeauCoup(pl.Group(0), 1, packet.MatchAll, packet.KeyIPPair, keyDstPort, 50, 2, nil)
		}},
		{"sumax-max", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallSuMaxMax(pl.Group(0), 1, packet.MatchAll, packet.KeyIPPair, core.QueueLength(), 3, nil)
		}},
		{"tower", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallTower(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, []int{16, 8, 4}, nil)
		}},
		{"counterbraids", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallCounterBraids(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, 8, 32, nil)
		}},
		{"oddsketch", 1, func(pl *core.Pipeline) (handle, error) {
			return InstallOddSketch(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.MemRange{})
		}},
		{"sumax-sum", 3, func(pl *core.Pipeline) (handle, error) {
			return InstallSuMaxSum([]*core.Group{pl.Group(0), pl.Group(1), pl.Group(2)},
				1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), nil)
		}},
		{"maxinterval", 3, func(pl *core.Pipeline) (handle, error) {
			return InstallMaxInterval([3]*core.Group{pl.Group(0), pl.Group(1), pl.Group(2)},
				1, packet.MatchAll, packet.KeyFiveTuple, nil)
		}},
		{"maxinterval-ensemble", 6, func(pl *core.Pipeline) (handle, error) {
			gs := make([]*core.Group, 6)
			for i := range gs {
				gs[i] = pl.Group(i)
			}
			return InstallMaxIntervalEnsemble(gs, 1, packet.MatchAll, packet.KeyFiveTuple, 2)
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := pipeline32(tc.groups, 1<<12)
			h, err := tc.install(pl)
			if err != nil {
				t.Fatalf("install: %v", err)
			}
			if h.MemoryBytes() <= 0 {
				t.Fatal("memory accounting must be positive")
			}
			for i := range tr.Packets {
				pl.Process(&tr.Packets[i])
			}
			if len(pl.Locate(1)) == 0 {
				t.Fatal("installed task must be locatable")
			}
			h.Uninstall()
			if len(pl.Locate(1)) != 0 {
				t.Fatal("uninstall must remove every rule")
			}
			// The freed CMUs accept a fresh install (state cleared).
			h2, err := tc.install(pl)
			if err != nil {
				t.Fatalf("reinstall: %v", err)
			}
			h2.Uninstall()
		})
	}
}

// TestEnsembleQueryAndMemory covers the ensemble's query helpers.
func TestEnsembleQueryAndMemory(t *testing.T) {
	pl := pipeline32(6, 1<<12)
	gs := make([]*core.Group, 6)
	for i := range gs {
		gs[i] = pl.Group(i)
	}
	ens, err := InstallMaxIntervalEnsemble(gs, 1, packet.MatchAll, packet.KeyFiveTuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := packet.Packet{SrcIP: 9, Proto: 6}
	for _, ts := range []uint64{0, 5_000_000, 6_000_000} { // gaps: 5 ms, 1 ms
		p := base
		p.TimestampNs = ts
		pl.Process(&p)
	}
	got := ens.EstimateKey(packet.KeyFiveTuple.Extract(&base))
	if got != 5000 { // µs
		t.Fatalf("ensemble max interval = %d µs, want 5000", got)
	}
	if ens.MemoryBytes() != 2*3*(1<<12)*4 {
		t.Fatalf("ensemble memory = %d", ens.MemoryBytes())
	}
}

// TestBeauCoupEstimateDistinct covers the coupon-inversion estimate.
func TestBeauCoupEstimateDistinct(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	const truth = 2000
	task, err := InstallBeauCoup(pl.Group(0), 1, packet.MatchAll,
		packet.KeyDstIP, packet.KeySrcIP, truth, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := packet.IPv4(1, 1, 1, 1)
	for i := 0; i < truth; i++ {
		pl.Process(&packet.Packet{SrcIP: uint32(i + 1000), DstIP: victim, Proto: 6})
	}
	vk := packet.KeyDstIP.Extract(&packet.Packet{DstIP: victim})
	est := task.EstimateDistinct(vk)
	if est < truth/4 || est > truth*4 {
		t.Fatalf("coupon estimate %.0f far from truth %d", est, truth)
	}
	// A key never seen estimates zero.
	quiet := packet.KeyDstIP.Extract(&packet.Packet{DstIP: packet.IPv4(9, 9, 9, 9)})
	if task.EstimateDistinct(quiet) != 0 {
		t.Fatal("unseen key must estimate 0")
	}
}

// TestBloomEffectiveBits covers the packing accounting used by Fig. 14g.
func TestBloomEffectiveBits(t *testing.T) {
	pl := pipeline32(1, 1<<10)
	packed, err := InstallBloom(pl.Group(0), 1, packet.Filter{DstPort: 1}, packet.KeyFiveTuple, 3, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := InstallBloom(pl.Group(0), 2, packet.Filter{DstPort: 2}, packet.KeyFiveTuple, 3, false, nil)
	if err == nil {
		// Same CMUs are occupied — expected to fail; use a fresh pipeline.
		plain.Uninstall()
	}
	pl2 := pipeline32(1, 1<<10)
	plain, err = InstallBloom(pl2.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, 3, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if packed.EffectiveBits() != 32*plain.EffectiveBits() {
		t.Fatalf("packing must multiply usable bits by the bucket width: %d vs %d",
			packed.EffectiveBits(), plain.EffectiveBits())
	}
	if packed.MemoryBytes() != plain.MemoryBytes() {
		t.Fatal("both variants occupy the same register memory")
	}
}
