package netwide

import (
	"errors"
	"testing"
	"time"

	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

func TestFleetEpochLifecycle(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients := startDaemons(t, 3, cfg)
	reg := telemetry.NewRegistry()
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{Telemetry: &reg.Fleet})

	if err := fleet.DeployEpoch(cmsSpec("ep")); err != nil {
		t.Fatal(err)
	}
	// The epoch task must not collide with plain tasks, and vice versa.
	if err := fleet.Deploy(cmsSpec("ep")); err == nil {
		t.Fatal("plain deploy must refuse an epoch task's name")
	}
	if err := fleet.DeployEpoch(cmsSpec("ep")); err == nil {
		t.Fatal("duplicate epoch deploy must fail")
	}

	// Querying before any rotation completes is an explicit error.
	if _, _, err := fleet.QueryEpochRows("ep", 0, EpochQuery{}); err == nil {
		t.Fatal("query with no completed epoch must fail")
	}

	// Epoch 1 traffic, spread across ingresses.
	tr1 := trace.Generate(trace.Config{Flows: 300, Packets: 12_000, ZipfS: 1.1, Seed: 41})
	for i := range tr1.Packets {
		ctrls[i%3].Process(&tr1.Packets[i])
	}
	ep, err := fleet.RotateEpoch("ep")
	if err != nil {
		t.Fatal(err)
	}
	if ep != 1 {
		t.Fatalf("first rotation landed on epoch %d", ep)
	}
	if cur, err := fleet.EpochOf("ep"); err != nil || cur != 1 {
		t.Fatalf("EpochOf = %d, %v", cur, err)
	}

	key := packet.KeyFiveTuple.Extract(&tr1.Packets[0])
	est1, report, err := fleet.EstimateKeyEpoch("ep", 1, key, EpochQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Epoch != 1 || report.Partial() || len(report.Contributed) != 3 {
		t.Fatalf("epoch-1 report = %+v", report)
	}
	if est1 == 0 {
		t.Fatal("epoch-1 estimate is zero despite traffic")
	}

	// Epoch 2 traffic must not leak into the epoch-1 readout (coherence at
	// the rotation boundary): the same query after more traffic is
	// bit-identical.
	tr2 := trace.Generate(trace.Config{Flows: 300, Packets: 12_000, ZipfS: 1.1, Seed: 42})
	for i := range tr2.Packets {
		ctrls[i%3].Process(&tr2.Packets[i])
	}
	rows1, _, err := fleet.QueryEpochRows("ep", 1, EpochQuery{})
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := fleet.QueryEpochRows("ep", 1, EpochQuery{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range rows1 {
		for j := range rows1[r] {
			if rows1[r][j] != again[r][j] {
				t.Fatalf("epoch-1 snapshot drifted at row %d bucket %d", r, j)
			}
		}
	}

	// After the second rotation, epoch 2 holds exactly the second trace.
	if _, err := fleet.RotateEpoch("ep"); err != nil {
		t.Fatal(err)
	}
	est2, report, err := fleet.EstimateKeyEpoch("ep", 0, key, EpochQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Epoch != 2 {
		t.Fatalf("latest-epoch report pinned to %d", report.Epoch)
	}
	// Key from tr1: its epoch-2 count comes only from tr2's packets (CMS
	// overestimates, never underestimates, so est2 can exceed 0 — but the
	// epoch-1 estimate must not change).
	_ = est2
	if v, _, err := fleet.EstimateKeyEpoch("ep", 1, key, EpochQuery{}); err == nil {
		t.Fatalf("epoch-1 estimate through the mirror must fail after rotation (mirror maps epoch 2), got %d", v)
	}
	// The raw rows for epoch 1 are still readable (retention window).
	if _, _, err := fleet.QueryEpochRows("ep", 1, EpochQuery{}); err != nil {
		t.Fatalf("epoch-1 rows unreadable inside retention window: %v", err)
	}

	if reg.Fleet.MergeTree.EpochQueries.Load() == 0 {
		t.Fatal("epoch queries not counted")
	}

	if err := fleet.RemoveEpochTask("ep"); err != nil {
		t.Fatal(err)
	}
	for i, c := range ctrls {
		if n := len(c.Tasks()); n != 0 {
			t.Fatalf("daemon %d leaked %d tasks after epoch remove", i, n)
		}
	}
	if _, err := fleet.RotateEpoch("ep"); err == nil {
		t.Fatal("rotate after remove must fail")
	}
	_ = est1
}

func TestFetchEpochRowsStandalone(t *testing.T) {
	// The mirror-less building block flymonctl query uses: one daemon,
	// straight RPC, straggler policy applied locally.
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients := startDaemons(t, 1, cfg)
	fleet := NewRemoteFleet(clients, cfg)
	if err := fleet.DeployEpoch(cmsSpec("ep")); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 4_000, Seed: 43})
	for i := range tr.Packets {
		ctrls[0].Process(&tr.Packets[i])
	}
	if _, err := fleet.RotateEpoch("ep"); err != nil {
		t.Fatal(err)
	}
	rows, frozenID, err := FetchEpochRows(clients[0], "ep", 1, EpochQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || frozenID == 0 {
		t.Fatalf("rows %d frozenID %d", len(rows), frozenID)
	}
	// A skip-policy fetch of a not-yet-completed epoch classifies as a
	// straggler immediately; a wait-policy fetch blocks only up to Wait.
	if _, _, err := FetchEpochRows(clients[0], "ep", 7, EpochQuery{Policy: StragglerSkip}); err == nil {
		t.Fatal("future epoch fetch must fail")
	} else {
		var se *stragglerError
		if !errors.As(err, &se) || se.want != 7 || se.have != 1 {
			t.Fatalf("skip fetch error = %v, want straggler want=7 have=1", err)
		}
	}
	start := time.Now()
	_, _, err = FetchEpochRows(clients[0], "ep", 7, EpochQuery{Wait: 150 * time.Millisecond})
	if err == nil {
		t.Fatal("wait-policy fetch of a future epoch must time out")
	}
	if el := time.Since(start); el < 100*time.Millisecond || el > 2*time.Second {
		t.Fatalf("wait-policy fetch blocked %v, want ~150ms", el)
	}
	_ = rpc.IsEpochUnavailable
}
