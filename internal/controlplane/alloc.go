// Package controlplane implements FlyMon's control plane (§3.4): task
// management (define/modify/remove measurement tasks compiled into runtime
// rules), resource management (compressed-key registry, buddy memory
// allocation over CMU registers, greedy CMU-Group placement), the
// accurate/efficient memory-allocation modes, and the deployment-delay
// model used for Table 3.
package controlplane

import (
	"fmt"
)

// BuddyAllocator manages one CMU register's buckets as power-of-two
// partitions — exactly the ranges address translation can map (§3.3).
// MinPartition bounds fragmentation: with 32 partitions per register the
// paper's 96-task-per-group figure follows (32 × 3 CMUs).
type BuddyAllocator struct {
	size     int
	minBlock int
	// free[order] holds free block bases of size minBlock<<order.
	free   map[int]map[int]bool
	orders int
	// allocated maps base → order for Free validation.
	allocated map[int]int
}

// NewBuddyAllocator manages `size` buckets (a power of two) with the given
// minimum partition size.
func NewBuddyAllocator(size, minBlock int) *BuddyAllocator {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("controlplane: allocator size %d not a power of two", size))
	}
	if minBlock <= 0 || minBlock&(minBlock-1) != 0 || minBlock > size {
		panic(fmt.Sprintf("controlplane: min block %d invalid for size %d", minBlock, size))
	}
	b := &BuddyAllocator{
		size:      size,
		minBlock:  minBlock,
		free:      make(map[int]map[int]bool),
		allocated: make(map[int]int),
	}
	for s := minBlock; s <= size; s <<= 1 {
		b.free[b.orders] = make(map[int]bool)
		b.orders++
	}
	b.free[b.orders-1][0] = true // the whole register
	return b
}

func (b *BuddyAllocator) orderFor(buckets int) (int, error) {
	if buckets <= 0 {
		return 0, fmt.Errorf("controlplane: cannot allocate %d buckets", buckets)
	}
	size := b.minBlock
	for o := 0; o < b.orders; o++ {
		if size >= buckets {
			return o, nil
		}
		size <<= 1
	}
	return 0, fmt.Errorf("controlplane: %d buckets exceed register size %d", buckets, b.size)
}

// Alloc reserves a partition of at least `buckets` buckets (rounded up to a
// power of two ≥ MinPartition) and returns its base.
func (b *BuddyAllocator) Alloc(buckets int) (base, got int, err error) {
	order, err := b.orderFor(buckets)
	if err != nil {
		return 0, 0, err
	}
	// Find the smallest free block of order ≥ requested.
	from := -1
	for o := order; o < b.orders; o++ {
		if len(b.free[o]) > 0 {
			from = o
			break
		}
	}
	if from < 0 {
		return 0, 0, fmt.Errorf("controlplane: no free partition of %d buckets", b.minBlock<<order)
	}
	// Take any block at `from` (smallest base for determinism).
	base = -1
	for bb := range b.free[from] {
		if base < 0 || bb < base {
			base = bb
		}
	}
	delete(b.free[from], base)
	// Split down to the requested order.
	for o := from; o > order; o-- {
		half := b.minBlock << (o - 1)
		b.free[o-1][base+half] = true
	}
	b.allocated[base] = order
	return base, b.minBlock << order, nil
}

// Free releases the partition at base, coalescing buddies.
func (b *BuddyAllocator) Free(base int) error {
	order, ok := b.allocated[base]
	if !ok {
		return fmt.Errorf("controlplane: free of unallocated base %d", base)
	}
	delete(b.allocated, base)
	for order < b.orders-1 {
		size := b.minBlock << order
		buddy := base ^ size
		if !b.free[order][buddy] {
			break
		}
		delete(b.free[order], buddy)
		if buddy < base {
			base = buddy
		}
		order++
	}
	b.free[order][base] = true
	return nil
}

// FreeBuckets returns the total unallocated buckets.
func (b *BuddyAllocator) FreeBuckets() int {
	total := 0
	for o, blocks := range b.free {
		total += len(blocks) * (b.minBlock << o)
	}
	return total
}

// LargestFree returns the largest allocatable partition size (0 when full).
func (b *BuddyAllocator) LargestFree() int {
	for o := b.orders - 1; o >= 0; o-- {
		if len(b.free[o]) > 0 {
			return b.minBlock << o
		}
	}
	return 0
}

// Allocations returns the number of live partitions.
func (b *BuddyAllocator) Allocations() int { return len(b.allocated) }

// Size returns the managed bucket count.
func (b *BuddyAllocator) Size() int { return b.size }

// MemoryMode selects how requested memory maps to a power-of-two partition
// (§3.4): Accurate never under-allocates; Efficient picks the nearest
// partition size, possibly smaller than requested.
type MemoryMode uint8

const (
	// Accurate allocates the smallest power of two ≥ the request.
	Accurate MemoryMode = iota
	// Efficient allocates the power of two closest to the request.
	Efficient
)

// String implements fmt.Stringer.
func (m MemoryMode) String() string {
	if m == Efficient {
		return "efficient"
	}
	return "accurate"
}

// PartitionFor maps a bucket request to the partition size the mode grants.
func (m MemoryMode) PartitionFor(request, minBlock, max int) int {
	if request < minBlock {
		request = minBlock
	}
	up := minBlock
	for up < request {
		up <<= 1
	}
	if up > max {
		up = max
	}
	if m == Accurate {
		return up
	}
	down := up >> 1
	if down < minBlock {
		return up
	}
	// Nearest in log space: prefer the smaller side on ties.
	if float64(request)/float64(down) <= float64(up)/float64(request) {
		return down
	}
	return up
}
