package algorithms

import (
	"fmt"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

// MaxIntervalTask is the combinatorial maximum inter-arrival-time task (§4):
// three CMUs from three CMU Groups. The first is a Bloom filter that
// classifies the flow as new or seen; the second tracks the last arrival
// time with MAX (its SALU read bus exposes the previous arrival); the third
// computes the interval in its preparation stage (now − previous, forced to
// 0 for new flows) and keeps the per-flow maximum with MAX.
//
// The three groups must be adjacent in pipeline order with no intervening
// task using the result bus — the same PHV-exclusivity a hardware
// deployment would reserve for a combinatorial task.
type MaxIntervalTask struct {
	Groups [3]*core.Group // bloom, arrival, interval
	TaskID int
	Units  [3]int
	Rows   [3]core.MemRange
	Method core.TranslationMethod
}

// InstallMaxInterval installs the task across three groups. rows may be nil
// (whole registers, CMU 0 of each group).
func InstallMaxInterval(groups [3]*core.Group, taskID int, filter packet.Filter,
	key packet.KeySpec, rows []core.MemRange) (*MaxIntervalTask, error) {
	var mems [3]core.MemRange
	if rows == nil {
		for i, g := range groups {
			mems[i] = core.MemRange{Base: 0, Buckets: g.CMU(0).Register().Size()}
		}
	} else {
		if len(rows) != 3 {
			return nil, fmt.Errorf("algorithms: max-interval needs 3 rows, got %d", len(rows))
		}
		copy(mems[:], rows)
	}
	t := &MaxIntervalTask{Groups: groups, TaskID: taskID, Rows: mems, Method: core.TCAMBased}
	for i, g := range groups {
		unit, err := EnsureUnit(g, key)
		if err != nil {
			t.Uninstall()
			return nil, err
		}
		t.Units[i] = unit
	}

	bloomWidth := groups[0].CMU(0).Register().BitWidth()
	bloom := &core.Rule{
		TaskID:      taskID,
		Filter:      filter,
		Key:         core.FullKey(t.Units[0]),
		P1:          core.CompressedKey(core.FullKey(t.Units[0]).SubRange(16, 32)),
		P2:          core.Const(1),
		Prep:        core.Transform{Kind: core.TransformBitSelect, Width: bloomWidth},
		Mem:         t.Rows[0],
		Translation: t.Method,
		Op:          dataplane.OpAndOr,
		DetectNew:   true,
	}
	if err := groups[0].CMU(0).InstallRule(bloom); err != nil {
		t.Uninstall()
		return nil, err
	}

	arrival := &core.Rule{
		TaskID:      taskID,
		Filter:      filter,
		Key:         core.FullKey(t.Units[1]),
		P1:          core.TimestampUs(),
		P2:          core.Const(0),
		Mem:         t.Rows[1],
		Translation: t.Method,
		Op:          dataplane.OpMax,
	}
	if err := groups[1].CMU(0).InstallRule(arrival); err != nil {
		t.Uninstall()
		return nil, err
	}

	interval := &core.Rule{
		TaskID:      taskID,
		Filter:      filter,
		Key:         core.FullKey(t.Units[2]),
		P1:          core.TimestampUs(),
		P2:          core.Const(0),
		Prep:        core.Transform{Kind: core.TransformIntervalSub},
		Mem:         t.Rows[2],
		Translation: t.Method,
		Op:          dataplane.OpMax,
	}
	if err := groups[2].CMU(0).InstallRule(interval); err != nil {
		t.Uninstall()
		return nil, err
	}
	return t, nil
}

// EstimateKey returns the tracked maximum inter-arrival time (µs) for
// canonical key k.
func (t *MaxIntervalTask) EstimateKey(k packet.CanonicalKey) uint32 {
	g := t.Groups[2]
	keys := make([]uint32, g.Units())
	keys[t.Units[2]] = g.HashKey(t.Units[2], k)
	idx := core.Translate(core.FullKey(t.Units[2]).Resolve(keys), t.Rows[2], t.Method)
	return g.CMU(0).Register().Read(idx)
}

// MemoryBytes returns the task's register memory footprint across all
// three CMUs.
func (t *MaxIntervalTask) MemoryBytes() int {
	total := 0
	for i, g := range t.Groups {
		total += t.Rows[i].Buckets * g.CMU(0).Register().BitWidth() / 8
	}
	return total
}

// Uninstall removes the task's rules from every group.
func (t *MaxIntervalTask) Uninstall() {
	for _, g := range t.Groups {
		if g == nil {
			continue
		}
		for i := 0; i < g.CMUs(); i++ {
			g.CMU(i).RemoveRule(t.TaskID)
		}
	}
}

// MaxIntervalEnsemble runs d independent MaxIntervalTask instances and
// reports the minimum estimate across instances, trimming hash-collision
// inflation (Fig. 14f's d=2/d=3 curves).
type MaxIntervalEnsemble struct {
	Instances []*MaxIntervalTask
}

// InstallMaxIntervalEnsemble installs d instances over 3·d groups.
func InstallMaxIntervalEnsemble(groups []*core.Group, taskIDBase int, filter packet.Filter,
	key packet.KeySpec, d int) (*MaxIntervalEnsemble, error) {
	if len(groups) < 3*d {
		return nil, fmt.Errorf("algorithms: max-interval ensemble d=%d needs %d groups, got %d", d, 3*d, len(groups))
	}
	e := &MaxIntervalEnsemble{}
	for j := 0; j < d; j++ {
		inst, err := InstallMaxInterval([3]*core.Group{groups[3*j], groups[3*j+1], groups[3*j+2]},
			taskIDBase+j, filter, key, nil)
		if err != nil {
			e.Uninstall()
			return nil, err
		}
		e.Instances = append(e.Instances, inst)
	}
	return e, nil
}

// EstimateKey returns the minimum across instances.
func (e *MaxIntervalEnsemble) EstimateKey(k packet.CanonicalKey) uint32 {
	min := ^uint32(0)
	for _, inst := range e.Instances {
		if v := inst.EstimateKey(k); v < min {
			min = v
		}
	}
	return min
}

// MemoryBytes sums the instances' footprints.
func (e *MaxIntervalEnsemble) MemoryBytes() int {
	total := 0
	for _, inst := range e.Instances {
		total += inst.MemoryBytes()
	}
	return total
}

// Uninstall removes every instance.
func (e *MaxIntervalEnsemble) Uninstall() {
	for _, inst := range e.Instances {
		inst.Uninstall()
	}
}
