package telemetry

import (
	"sync"
	"time"
)

// DefaultJournalSize is the ring capacity a Registry's journal starts with:
// enough to hold every reconfiguration of a busy SDM epoch sequence while
// bounding memory regardless of daemon uptime.
const DefaultJournalSize = 256

// Event is one control-plane reconfiguration record. At is monotonic time
// since the journal was created (from time.Since on a monotonic base, so it
// orders events even across wall-clock steps); Seq is a gap-free sequence
// number, so a reader can detect how many events the bounded ring evicted
// between two scrapes.
type Event struct {
	Seq           uint64 `json:"seq"`
	AtNs          int64  `json:"at_ns"` // monotonic ns since journal start
	Kind          string `json:"kind"`  // deploy|remove|resize|split|freeze|thaw|reset|rekey|republish
	Task          int    `json:"task,omitempty"`
	Detail        string `json:"detail,omitempty"`
	LatencyNs     int64  `json:"latency_ns"`
	VersionBefore uint64 `json:"version_before"`
	VersionAfter  uint64 `json:"version_after"`
	OK            bool   `json:"ok"`
	Err           string `json:"err,omitempty"`
}

// Journal is a bounded ring of reconfiguration events. Record overwrites the
// oldest entry once the ring is full; Events returns the survivors oldest-
// first. All methods are safe for concurrent use; recording is O(1) with no
// allocation after the ring is built.
type Journal struct {
	mu      sync.Mutex
	start   time.Time
	ring    []Event
	next    uint64 // total events ever recorded == next Seq
	dropped uint64
}

// NewJournal builds a journal holding the last `size` events (size <= 0
// falls back to DefaultJournalSize).
func NewJournal(size int) *Journal {
	if size <= 0 {
		size = DefaultJournalSize
	}
	return &Journal{start: time.Now(), ring: make([]Event, 0, size)}
}

// Record stamps the event with the next sequence number and a monotonic
// timestamp, then appends it, evicting the oldest event if the ring is full.
func (j *Journal) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e.Seq = j.next
	e.AtNs = time.Since(j.start).Nanoseconds()
	j.next++
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, e)
		return
	}
	// Full: overwrite in place at the wrap position, avoiding any slide.
	j.ring[e.Seq%uint64(cap(j.ring))] = e
	j.dropped++
}

// Events returns the retained events in sequence order (oldest first).
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if len(j.ring) < cap(j.ring) {
		return append(out, j.ring...)
	}
	// The ring has wrapped: the oldest entry sits at next % cap.
	c := uint64(cap(j.ring))
	for i := uint64(0); i < c; i++ {
		out = append(out, j.ring[(j.next+i)%c])
	}
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.ring)
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int { return cap(j.ring) }

// Total returns how many events were ever recorded (== the next Seq).
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped returns how many events the bounded ring has evicted.
func (j *Journal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}
