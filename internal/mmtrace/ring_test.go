package mmtrace

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingStress drives many producers and consumers through a small ring
// (forcing wraparound and both stall paths) and verifies every span is
// delivered exactly once. Run under -race this is the ring's memory-order
// proof; the goroutine gate at the end asserts nothing leaks.
func TestRingStress(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	before := runtime.NumGoroutine()

	r := NewRing(64) // small: guarantees full-ring stalls and wraparound
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			spans := make([]Span, 0, 7) // odd chunking exercises partial pushes
			for i := 0; i < perProd; i++ {
				spans = append(spans, Span{Src: int32(p), Lo: int64(i), Hi: int64(i + 1)})
				if len(spans) == cap(spans) {
					r.PushBatch(spans)
					spans = spans[:0]
				}
			}
			r.PushBatch(spans)
		}(p)
	}
	go func() {
		wg.Wait()
		r.Close()
	}()

	var seen [producers][]int64
	var mu sync.Mutex
	var total atomic.Int64
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			dst := make([]Span, 5)
			local := make([][]int64, producers)
			for {
				n := r.PopBatch(dst)
				if n == 0 {
					break
				}
				for _, s := range dst[:n] {
					if s.Hi != s.Lo+1 {
						t.Errorf("span corrupted: %+v", s)
						return
					}
					local[s.Src] = append(local[s.Src], s.Lo)
				}
				total.Add(int64(n))
			}
			mu.Lock()
			for p := range local {
				seen[p] = append(seen[p], local[p]...)
			}
			mu.Unlock()
		}()
	}
	cwg.Wait()

	if got := total.Load(); got != producers*perProd {
		t.Fatalf("consumed %d spans, want %d", got, producers*perProd)
	}
	for p := 0; p < producers; p++ {
		marks := make([]bool, perProd)
		for _, lo := range seen[p] {
			if lo < 0 || lo >= perProd {
				t.Fatalf("producer %d: span %d out of range", p, lo)
			}
			if marks[lo] {
				t.Fatalf("producer %d: span %d delivered twice", p, lo)
			}
			marks[lo] = true
		}
		for i, ok := range marks {
			if !ok {
				t.Fatalf("producer %d: span %d never delivered", p, i)
			}
		}
	}
	st := r.Stats()
	if st.Spans != producers*perProd {
		t.Fatalf("ring counted %d spans, want %d", st.Spans, producers*perProd)
	}
	if st.Occupancy != 0 {
		t.Fatalf("drained ring occupancy = %d", st.Occupancy)
	}

	// Goroutine-leak gate: everything the test started must exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRingCloseDrain(t *testing.T) {
	r := NewRing(8)
	r.PushBatch([]Span{{Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}})
	r.Close()
	dst := make([]Span, 8)
	if n := r.PopBatch(dst); n != 2 {
		t.Fatalf("drained %d spans, want 2 before the closed signal", n)
	}
	if n := r.PopBatch(dst); n != 0 {
		t.Fatalf("closed+empty ring returned %d spans", n)
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {700, 1024}} {
		if got := NewRing(tc.ask).Cap(); got != tc.want {
			t.Fatalf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingBatchLargerThanCapacity(t *testing.T) {
	r := NewRing(4)
	spans := make([]Span, 10)
	for i := range spans {
		spans[i] = Span{Lo: int64(i), Hi: int64(i + 1)}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.PushBatch(spans) // must chunk, not deadlock on itself
		r.Close()
	}()
	var got []Span
	dst := make([]Span, 3)
	for {
		n := r.PopBatch(dst)
		if n == 0 {
			break
		}
		got = append(got, dst[:n]...)
	}
	<-done
	if len(got) != len(spans) {
		t.Fatalf("got %d spans, want %d", len(got), len(spans))
	}
	for i, s := range got {
		if s.Lo != int64(i) {
			t.Fatalf("span %d out of order: %+v", i, s)
		}
	}
}
