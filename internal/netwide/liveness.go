// Liveness: BFD-style async keepalive sessions over the control channel.
//
// Each remote switch gets one session — its own connection, its own
// Down/Init/Up three-way state machine, hellos at a jittered tx interval —
// so a dead or silently-partitioned flymond is detected in a few tx
// intervals (hundreds of milliseconds) instead of an RPC timeout, and a
// flapping one is held out of service by damping instead of bouncing the
// fleet. The state machine itself (sessionSM) is pure and clock-injected:
// every transition rule is unit-testable without goroutines or sleeping.
// A thin runner goroutine per switch drives it against the wire.
package netwide

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flymon/internal/rpc"
)

// SessionState is a liveness session's position in the BFD-style
// handshake. SessionNone means no session is attached (liveness not
// started) — the zero value, so plain op-outcome health keeps working
// unchanged when sessions are off.
type SessionState int

const (
	SessionNone SessionState = iota
	SessionDown
	SessionInit
	SessionUp
)

func (s SessionState) String() string {
	switch s {
	case SessionNone:
		return "none"
	case SessionDown:
		return "down"
	case SessionInit:
		return "init"
	case SessionUp:
		return "up"
	default:
		return fmt.Sprintf("SessionState(%d)", int(s))
	}
}

// wireState maps a session state to its control-channel encoding.
func (s SessionState) wireState() int {
	switch s {
	case SessionInit:
		return rpc.HelloStateInit
	case SessionUp:
		return rpc.HelloStateUp
	default:
		return rpc.HelloStateDown
	}
}

// LivenessOptions tunes the per-switch keepalive sessions. The zero value
// of any field selects the default.
type LivenessOptions struct {
	// TxInterval is the hello cadence (default 100ms). Each send is
	// jittered into [(1-Jitter)·Tx, Tx] so a fleet of sessions does not
	// probe in lockstep.
	TxInterval time.Duration
	// DetectMult is the detection-time multiplier: a session with no good
	// reply for DetectMult×TxInterval is declared Down (default 3).
	DetectMult int
	// Jitter is the fraction of TxInterval randomized away per send
	// (default 0.25, BFD's convention; 0 < Jitter < 1).
	Jitter float64
	// FlapThreshold Down-transitions within FlapWindow arm flap damping:
	// the session must then stay Up for HoldDown before it is *reported*
	// Up again. Defaults: 3 flaps within 32×TxInterval, hold-down
	// 8×TxInterval.
	FlapThreshold int
	FlapWindow    time.Duration
	HoldDown      time.Duration
	// CallTimeout bounds one hello round trip (default DetectMult×Tx —
	// a hung daemon costs at most one detection interval per probe).
	CallTimeout time.Duration
	// Dial builds a session's dedicated client (sessions never share the
	// operation connection: a long register readout must not delay a
	// hello past its detection time). nil = plain TCP with timeouts
	// derived from the options. Tests inject fault-wrapped dialers here.
	Dial func(addr string) (*rpc.Client, error)
	// Seed fixes the jitter streams (0 = from the clock).
	Seed int64
	// Clock overrides time.Now for the state machines (tests drive
	// detection and damping without sleeping).
	Clock func() time.Time
}

func (o LivenessOptions) withDefaults() LivenessOptions {
	if o.TxInterval <= 0 {
		o.TxInterval = 100 * time.Millisecond
	}
	if o.DetectMult <= 0 {
		o.DetectMult = 3
	}
	if o.Jitter <= 0 || o.Jitter >= 1 {
		o.Jitter = 0.25
	}
	if o.FlapThreshold <= 0 {
		o.FlapThreshold = 3
	}
	if o.FlapWindow <= 0 {
		o.FlapWindow = 32 * o.TxInterval
	}
	if o.HoldDown <= 0 {
		o.HoldDown = 8 * o.TxInterval
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = time.Duration(o.DetectMult) * o.TxInterval
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	if o.Dial == nil {
		opts := rpc.Options{
			DialTimeout:      o.CallTimeout,
			CallTimeout:      o.CallTimeout,
			MaxRetries:       -1,      // the state machine owns failure handling
			BreakerThreshold: 1 << 30, // ditto: sessions must keep probing
			Seed:             o.Seed,
		}
		o.Dial = func(addr string) (*rpc.Client, error) {
			return rpc.DialOptions(addr, opts)
		}
	}
	return o
}

// DetectTime is the configured detection interval (DetectMult×TxInterval).
func (o LivenessOptions) DetectTime() time.Duration {
	o = o.withDefaults()
	return time.Duration(o.DetectMult) * o.TxInterval
}

// SessionSnapshot is one session's observable state.
type SessionSnapshot struct {
	Switch              int
	Addr                string
	State               SessionState
	ReportedUp          bool // Up and not held down by damping
	Damped              bool
	ConsecutiveFailures int // hello transport failures since the last good reply
	Transitions         uint64
	LastTransition      time.Time
	LastReply           time.Time
	Incarnation         int64
	RemoteTasks         int
	DetectTime          time.Duration
}

// sessionEvent describes what one state-machine step changed.
type sessionEvent struct {
	StateChanged    bool
	From, To        SessionState
	ReportedChanged bool
	ReportedUp      bool
	Restarted       bool          // the daemon's incarnation changed
	DetectionTime   time.Duration // set on a timeout-driven Down: last reply → detection
}

// sessionSM is the pure BFD-style session state machine. All methods take
// the current time explicitly; nothing here sleeps, ticks, or touches the
// network.
type sessionSM struct {
	detect        time.Duration
	holdDown      time.Duration
	flapWindow    time.Duration
	flapThreshold int

	state       SessionState
	reportedUp  bool
	fails       int
	transitions uint64
	lastChange  time.Time
	lastReply   time.Time // last good reply (any remote state)
	upSince     time.Time
	downs       []time.Time // recent transitions to Down, pruned to flapWindow
	incarnation int64
	remoteTasks int
}

func newSessionSM(o LivenessOptions) *sessionSM {
	return &sessionSM{
		detect:        time.Duration(o.DetectMult) * o.TxInterval,
		holdDown:      o.HoldDown,
		flapWindow:    o.FlapWindow,
		flapThreshold: o.FlapThreshold,
		state:         SessionDown,
	}
}

// transition moves the machine to st, recording flap history.
func (s *sessionSM) transition(st SessionState, now time.Time, ev *sessionEvent) {
	if s.state == st {
		return
	}
	ev.StateChanged = true
	ev.From, ev.To = s.state, st
	s.state = st
	s.transitions++
	s.lastChange = now
	switch st {
	case SessionDown:
		s.downs = append(s.downs, now)
		s.pruneFlaps(now)
	case SessionUp:
		s.upSince = now
	}
}

func (s *sessionSM) pruneFlaps(now time.Time) {
	kept := s.downs[:0]
	for _, t := range s.downs {
		if now.Sub(t) <= s.flapWindow {
			kept = append(kept, t)
		}
	}
	s.downs = kept
}

// damped reports whether flap damping currently holds the session out of
// service: enough recent Down-transitions that Up must be sustained for
// the hold-down period before it counts.
func (s *sessionSM) damped(now time.Time) bool {
	if s.state != SessionUp {
		return false
	}
	s.pruneFlaps(now)
	return len(s.downs) >= s.flapThreshold && now.Sub(s.upSince) < s.holdDown
}

// refresh re-evaluates the derived reported-Up signal (damping expiry and
// detect timeouts are time-driven, not event-driven).
func (s *sessionSM) refresh(now time.Time, ev *sessionEvent) {
	if s.state != SessionDown && !s.lastReply.IsZero() && now.Sub(s.lastReply) >= s.detect {
		// Detection: the peer has been silent for the full detection
		// interval. Record the latency from the last good reply — the
		// number the detection-time histogram tracks.
		ev.DetectionTime = now.Sub(s.lastReply)
		s.transition(SessionDown, now, ev)
	}
	up := s.state == SessionUp && !s.damped(now)
	if up != s.reportedUp {
		s.reportedUp = up
		ev.ReportedChanged = true
	}
	ev.ReportedUp = s.reportedUp
}

// onReply folds one successful hello round trip: the daemon answered with
// its session state and incarnation.
func (s *sessionSM) onReply(remote int, incarnation int64, tasks int, now time.Time) sessionEvent {
	var ev sessionEvent
	s.fails = 0
	s.lastReply = now
	s.remoteTasks = tasks
	if s.incarnation != 0 && incarnation != s.incarnation && s.state == SessionUp {
		// The daemon restarted between probes: its state is gone even
		// though it answers promptly. Tear the session down so the rejoin
		// (and the reconciler it triggers) is explicit.
		ev.Restarted = true
		s.transition(SessionDown, now, &ev)
	}
	s.incarnation = incarnation
	switch remote {
	case rpc.HelloStateDown:
		switch s.state {
		case SessionDown:
			s.transition(SessionInit, now, &ev)
		case SessionUp:
			// The peer reset (it no longer remembers our session): restart
			// the handshake.
			s.transition(SessionDown, now, &ev)
		}
	case rpc.HelloStateInit:
		if s.state != SessionUp {
			s.transition(SessionUp, now, &ev)
		}
	case rpc.HelloStateUp:
		if s.state == SessionInit {
			s.transition(SessionUp, now, &ev)
		}
		// Down + remote Up: ignore — the peer must see our Down and
		// re-init first (matches BFD's receive rules).
	}
	s.refresh(now, &ev)
	return ev
}

// onFail folds one hello transport failure. Failures alone never flip the
// state — detection is time-based (refresh) so one lost probe under jitter
// or load is not a false eject.
func (s *sessionSM) onFail(now time.Time) sessionEvent {
	var ev sessionEvent
	s.fails++
	if s.lastReply.IsZero() {
		// Never heard from the peer: stay Down; nothing to detect.
		s.refresh(now, &ev)
		return ev
	}
	s.refresh(now, &ev)
	return ev
}

func (s *sessionSM) snapshot(now time.Time) SessionSnapshot {
	return SessionSnapshot{
		State:               s.state,
		ReportedUp:          s.reportedUp,
		Damped:              s.damped(now),
		ConsecutiveFailures: s.fails,
		Transitions:         s.transitions,
		LastTransition:      s.lastChange,
		LastReply:           s.lastReply,
		Incarnation:         s.incarnation,
		RemoteTasks:         s.remoteTasks,
		DetectTime:          s.detect,
	}
}

// liveSession is one switch's running session: the pure machine plus its
// dedicated connection and runner goroutine.
type liveSession struct {
	idx  int
	addr string
	id   string // wire discriminator, unique per session instance

	mu  sync.Mutex
	sm  *sessionSM
	cli *rpc.Client
}

// LivenessManager runs one keepalive session per address. It is usable
// standalone (flymonctl fleet probes a fleet with one) or bound to a
// RemoteFleet via StartLiveness, which wires transitions into health,
// telemetry, the journal, and the reconciler.
type LivenessManager struct {
	opts  LivenessOptions
	addrs []string

	sessions []*liveSession
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// onEvent, when set, observes every hello round's outcome (called
	// outside the session lock, sequentially per switch).
	onEvent func(idx int, ev sessionEvent, snap SessionSnapshot)
}

// sessionSeq makes wire discriminators unique across manager instances in
// one process (tests run many).
var sessionSeq struct {
	sync.Mutex
	n int
}

// NewLivenessManager builds (but does not start) sessions for addrs.
func NewLivenessManager(addrs []string, opts LivenessOptions) *LivenessManager {
	opts = opts.withDefaults()
	sessionSeq.Lock()
	sessionSeq.n++
	gen := sessionSeq.n
	sessionSeq.Unlock()
	m := &LivenessManager{opts: opts, addrs: addrs, stop: make(chan struct{})}
	for i, addr := range addrs {
		m.sessions = append(m.sessions, &liveSession{
			idx:  i,
			addr: addr,
			id:   fmt.Sprintf("flymon-%d-%d-%d", opts.Seed, gen, i),
			sm:   newSessionSM(opts),
		})
	}
	return m
}

// Start launches one runner goroutine per session.
func (m *LivenessManager) Start() {
	for _, ls := range m.sessions {
		m.wg.Add(1)
		go m.run(ls)
	}
}

// Stop terminates every session runner and closes their connections.
func (m *LivenessManager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Snapshot returns every session's current state.
func (m *LivenessManager) Snapshot() []SessionSnapshot {
	now := m.opts.Clock()
	out := make([]SessionSnapshot, len(m.sessions))
	for i, ls := range m.sessions {
		ls.mu.Lock()
		s := ls.sm.snapshot(now)
		ls.mu.Unlock()
		s.Switch = ls.idx
		s.Addr = ls.addr
		out[i] = s
	}
	return out
}

// run is one session's send loop: hello, fold the outcome, sleep a
// jittered tx interval, repeat.
func (m *LivenessManager) run(ls *liveSession) {
	defer m.wg.Done()
	defer func() {
		ls.mu.Lock()
		if ls.cli != nil {
			ls.cli.Close()
			ls.cli = nil
		}
		ls.mu.Unlock()
	}()
	rng := rand.New(rand.NewSource(m.opts.Seed + int64(ls.idx)*7919))
	timer := time.NewTimer(0) // first hello immediately
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C:
		}
		ev, snap := m.helloOnce(ls)
		if m.onEvent != nil {
			m.onEvent(ls.idx, ev, snap)
		}
		// Jitter: [(1-j)·Tx, Tx], per BFD convention.
		tx := m.opts.TxInterval
		d := tx - time.Duration(rng.Int63n(int64(float64(tx)*m.opts.Jitter)+1))
		timer.Reset(d)
	}
}

// helloOnce performs one probe round: (re)dial if needed, send the local
// state, fold the reply or failure into the machine.
func (m *LivenessManager) helloOnce(ls *liveSession) (sessionEvent, SessionSnapshot) {
	ls.mu.Lock()
	cli := ls.cli
	state := ls.sm.state
	ls.mu.Unlock()

	var (
		res     rpc.HelloResult
		callErr error
	)
	if cli == nil {
		c, err := m.opts.Dial(ls.addr)
		if err != nil {
			callErr = err
		} else {
			cli = c
			ls.mu.Lock()
			ls.cli = cli
			ls.mu.Unlock()
		}
	}
	if callErr == nil {
		res, callErr = cli.Hello(ls.id, state.wireState(), m.opts.TxInterval)
	}
	now := m.opts.Clock()

	ls.mu.Lock()
	var ev sessionEvent
	if callErr != nil {
		ev = ls.sm.onFail(now)
	} else {
		ev = ls.sm.onReply(res.State, res.Incarnation, res.Tasks, now)
	}
	snap := ls.sm.snapshot(now)
	ls.mu.Unlock()
	snap.Switch = ls.idx
	snap.Addr = ls.addr
	return ev, snap
}
