// Package tracing is FlyMon's lightweight distributed tracing plane for
// the control channel. Every controller-originated operation (deploy,
// remove, epoch rotation, fleet query) mints a trace ID and a root span;
// the span context rides the rpc.Request envelope's optional `trace`
// field to the daemons, which record their own dispatch and controlplane
// spans under the same trace. Spans land in a bounded lock-free
// per-process buffer (overwrites are counted, never silently lost) and
// are exported three ways: the trace_dump RPC, the /debug/trace admin
// endpoint, and Prometheus span-latency histograms.
//
// The design goal is zero cost when absent: a nil *Tracer is a valid
// disabled tracer — every method on a nil Tracer or nil ActiveSpan is a
// no-op returning zero values, so instrumented call sites are branchless
// and the data-plane hot path is untouched.
package tracing

import (
	"sync"
	"sync/atomic"
	"time"

	"flymon/internal/telemetry"
)

// TraceID identifies one end-to-end control-plane operation across
// processes. Zero is invalid.
type TraceID uint64

// SpanID identifies one span within a trace. Zero is invalid (it is the
// Parent value of a root span).
type SpanID uint64

// SpanContext is the propagated half of a span: enough for a remote
// process to parent its own spans under ours. It is embedded verbatim in
// the rpc.Request envelope as the `trace` field; old peers ignore it.
type SpanContext struct {
	Trace TraceID `json:"t"`
	Span  SpanID  `json:"s"`
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// Span is one finished timed operation. Spans are plain values: they
// serialize over the trace_dump RPC and /debug/trace unchanged.
type Span struct {
	Trace   TraceID `json:"trace"`
	ID      SpanID  `json:"id"`
	Parent  SpanID  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	Detail  string  `json:"detail,omitempty"`
	Switch  int     `json:"sw"`                // switch index; -1 = not switch-scoped
	Attempt int     `json:"attempt,omitempty"` // RPC attempt ordinal (1-based; 0 = n/a)
	StartNs int64   `json:"start_ns"`          // wall clock, unix nanoseconds
	DurNs   int64   `json:"dur_ns"`
	Err     string  `json:"err,omitempty"`
}

// End returns the span's wall-clock end, in unix nanoseconds.
func (s Span) End() int64 { return s.StartNs + s.DurNs }

// Context returns the span's own propagation context.
func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// maxHistOps bounds the span-latency histogram map so a buggy caller
// minting per-item span names cannot grow metric cardinality without
// bound; overflow names fold into the "other" series.
const maxHistOps = 64

// Tracer mints spans and owns the process's bounded span buffer. A nil
// Tracer is the disabled tracer: every method is a no-op.
type Tracer struct {
	buf *buffer

	mu    sync.Mutex
	hists map[string]*telemetry.Histogram
}

// DefaultBufferSpans is the span-buffer capacity used when New is given a
// non-positive size: enough for several hundred fleet operations on a
// modest fleet before the ring laps.
const DefaultBufferSpans = 4096

// New builds a Tracer with a bounded span buffer of the given capacity
// (rounded up to a power of two; <= 0 selects DefaultBufferSpans).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultBufferSpans
	}
	return &Tracer{
		buf:   newBuffer(capacity),
		hists: make(map[string]*telemetry.Histogram),
	}
}

// StartRoot mints a fresh trace and its root span. The returned span is
// nil (and safe to use) when the tracer is disabled.
func (t *Tracer) StartRoot(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return t.start(SpanContext{Trace: TraceID(newID())}, name)
}

// StartSpan opens a child span under parent. An invalid parent starts a
// fresh root trace instead, so call sites need no branching on whether an
// upstream tracer was attached.
func (t *Tracer) StartSpan(parent SpanContext, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	return t.start(parent, name)
}

func (t *Tracer) start(parent SpanContext, name string) *ActiveSpan {
	now := time.Now()
	return &ActiveSpan{
		t:     t,
		start: now,
		span: Span{
			Trace:   parent.Trace,
			ID:      SpanID(newID()),
			Parent:  parent.Span,
			Name:    name,
			Switch:  -1,
			StartNs: now.UnixNano(),
		},
	}
}

// Dump snapshots the span buffer: the retained spans (oldest first), the
// total ever recorded, and how many were overwritten by the bounded ring.
func (t *Tracer) Dump() (spans []Span, total, dropped uint64) {
	if t == nil {
		return nil, 0, 0
	}
	return t.buf.snapshot()
}

// Dropped returns how many spans the bounded buffer has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.buf.dropped()
}

// observe folds a finished span into the buffer and its per-op latency
// histogram.
func (t *Tracer) observe(sp Span) {
	t.buf.put(sp)
	t.mu.Lock()
	h := t.hists[sp.Name]
	if h == nil {
		if len(t.hists) >= maxHistOps {
			if h = t.hists["other"]; h == nil {
				h = &telemetry.Histogram{}
				t.hists["other"] = h
			}
		} else {
			h = &telemetry.Histogram{}
			t.hists[sp.Name] = h
		}
	}
	t.mu.Unlock()
	h.Observe(time.Duration(sp.DurNs))
}

// ActiveSpan is an in-flight span. All methods are nil-safe; the zero
// cost of a disabled tracer is a handful of nil checks.
type ActiveSpan struct {
	t     *Tracer
	start time.Time
	span  Span
	done  atomic.Bool
}

// Context returns the propagation context naming this span as parent.
// On a nil span it returns the invalid zero context, which downstream
// StartSpan/RPC plumbing treats as "no trace".
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.span.Context()
}

// SetDetail attaches a free-form annotation (address, task name, outcome).
func (s *ActiveSpan) SetDetail(detail string) {
	if s != nil {
		s.span.Detail = detail
	}
}

// SetSwitch tags the span with the fleet switch index it concerns.
func (s *ActiveSpan) SetSwitch(i int) {
	if s != nil {
		s.span.Switch = i
	}
}

// SetAttempt tags the span with its RPC attempt ordinal (1-based).
func (s *ActiveSpan) SetAttempt(n int) {
	if s != nil {
		s.span.Attempt = n
	}
}

// Finish stamps the duration, records the error outcome (nil = success),
// and commits the span to the buffer. Finish is idempotent: only the
// first call commits.
func (s *ActiveSpan) Finish(err error) {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.span.DurNs = time.Since(s.start).Nanoseconds()
	if err != nil {
		s.span.Err = err.Error()
	}
	s.t.observe(s.span)
}

// idState seeds the process-wide ID stream from the clock once, then
// derives every ID with a splitmix64 step: unique, well-distributed,
// never zero, and cheap enough to mint on every span.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

func newID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}
