package experiments

import (
	"runtime"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Throughput measures the data-plane packet rate of a fully loaded 9-group
// pipeline (27 CMUs, one CMS task per CMU triple) under the batch API with
// a sweep of worker counts — the multi-pipe scaling the lock-free fast
// path (RCU snapshots + atomic registers + per-worker contexts) buys. It
// is not a figure of the paper; it quantifies this reproduction's "runs as
// fast as the hardware allows" claim.
func Throughput(scale Scale, seed int64) *Table {
	_, packets := scale.workload()
	ctrl := controlplane.NewController(controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32})
	for g := 0; g < 9; g++ {
		if _, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "load", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
		}); err != nil {
			panic(err)
		}
	}
	tr := trace.Generate(trace.Config{Flows: 6000, Packets: packets, Seed: seed})

	t := &Table{
		Title:  "Throughput — lock-free batch processing vs worker count (9 groups, 27 CMUs loaded)",
		Header: []string{"Workers", "Mpps", "Speedup"},
	}
	var base float64
	maxW := runtime.GOMAXPROCS(0)
	for w := 1; w <= maxW; w *= 2 {
		// Warm once, then time the replay.
		ctrl.ProcessParallel(tr.Packets, w)
		start := time.Now()
		ctrl.ProcessParallel(tr.Packets, w)
		elapsed := time.Since(start)
		mpps := float64(len(tr.Packets)) / elapsed.Seconds() / 1e6
		if w == 1 {
			base = mpps
		}
		t.Rows = append(t.Rows, []string{itoa(w), f2(mpps), f2(mpps / base) + "x"})
	}
	t.Notes = append(t.Notes,
		"reconfiguration never stalls this path: the control plane publishes immutable config snapshots (RCU)",
		"per-bucket register updates are atomic CAS; counts stay exact under any interleaving")
	return t
}
