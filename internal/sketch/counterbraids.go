package sketch

import (
	"encoding/binary"
	"fmt"

	"flymon/internal/analysis"
	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// CounterBraids (Lu et al.) is a two-layer braided counter architecture for
// near-zero-error per-flow counting. Layer 1 holds many narrow counters; a
// layer-1 overflow carries into the (much smaller) wide layer-2 counters
// hashed from the layer-1 counter index. Per-flow values are recovered
// offline with iterative message-passing decoding over the known flow set.
type CounterBraids struct {
	spec packet.KeySpec

	d1, m1 int
	bits1  uint
	layer1 []uint32 // values mod 2^bits1

	d2, m2 int
	layer2 []uint32 // overflow counts

	hash1 *hashing.Family
	hash2 []*hashing.Unit
}

// NewCounterBraids builds a braid with m1 layer-1 counters of bits1 bits
// (d1 hashes) and m2 layer-2 counters (d2 hashes), keyed by spec.
func NewCounterBraids(spec packet.KeySpec, d1, m1, bits1, d2, m2 int) *CounterBraids {
	if bits1 <= 0 || bits1 >= 32 {
		panic(fmt.Sprintf("sketch: counter braids layer-1 width %d out of range", bits1))
	}
	m1, m2 = ceilPow2(m1), ceilPow2(m2)
	cb := &CounterBraids{
		spec: spec,
		d1:   d1, m1: m1, bits1: uint(bits1),
		layer1: make([]uint32, m1),
		d2:     d2, m2: m2,
		layer2: make([]uint32, m2),
		hash1:  hashing.NewFamily(d1, spec),
	}
	for j := 0; j < d2; j++ {
		// Layer-2 hashes digest the layer-1 counter index; offset the unit
		// indices so they are independent from layer-1's.
		cb.hash2 = append(cb.hash2, hashing.NewUnit((d1+j)%hashing.MaxUnits()))
	}
	return cb
}

// NewCounterBraidsForBytes builds the canonical configuration for a memory
// budget: 8-bit layer-1 counters taking ~2/3 of memory with d1=3, and
// 32-bit layer-2 counters taking the rest with d2=2.
func NewCounterBraidsForBytes(spec packet.KeySpec, memBytes int) *CounterBraids {
	m1 := memBytes * 2 / 3 // 1 byte per layer-1 counter
	m2 := (memBytes - m1) / 4
	if m1 < 8 {
		m1 = 8
	}
	if m2 < 4 {
		m2 = 4
	}
	return NewCounterBraids(spec, 3, m1, 8, 2, m2)
}

// AddPacket increments p's flow in all d1 layer-1 counters, braiding
// overflows into layer 2.
func (cb *CounterBraids) AddPacket(p *packet.Packet) {
	lim := uint32(1) << cb.bits1
	for j := 0; j < cb.d1; j++ {
		idx := cb.hash1.Hash(j, p) & uint32(cb.m1-1)
		cb.layer1[idx]++
		if cb.layer1[idx] == lim {
			cb.layer1[idx] = 0
			cb.carry(idx)
		}
	}
}

func (cb *CounterBraids) carry(idx uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], idx)
	for j := 0; j < cb.d2; j++ {
		h := cb.hash2[j].HashBytes(b[:]) & uint32(cb.m2-1)
		cb.layer2[h] = satAdd32(cb.layer2[h], 1)
	}
}

// Decode recovers per-flow counts for the given flow set using two rounds
// of message passing: first layer 2 is decoded to recover each layer-1
// counter's overflow count (items = layer-1 indices), then the
// reconstructed full layer-1 values are decoded against the flow set.
func (cb *CounterBraids) Decode(flows []packet.CanonicalKey, iters int) map[packet.CanonicalKey]uint64 {
	if iters <= 0 {
		iters = 8
	}
	// Pass 1: overflow counts per layer-1 index from layer 2.
	l2 := make([]uint64, cb.m2)
	for i, v := range cb.layer2 {
		l2[i] = uint64(v)
	}
	edges2 := make([][]uint32, cb.m1)
	var b [4]byte
	for i := 0; i < cb.m1; i++ {
		e := make([]uint32, cb.d2)
		binary.LittleEndian.PutUint32(b[:], uint32(i))
		for j := 0; j < cb.d2; j++ {
			e[j] = cb.hash2[j].HashBytes(b[:]) & uint32(cb.m2-1)
		}
		edges2[i] = e
	}
	overflow := analysis.CBDecode(l2, edges2, iters)

	// Reconstruct full layer-1 values.
	full := make([]uint64, cb.m1)
	for i, v := range cb.layer1 {
		full[i] = uint64(v) + overflow[i]<<cb.bits1
	}

	// Pass 2: per-flow counts from full layer-1 values.
	edges1 := make([][]uint32, len(flows))
	for i, f := range flows {
		e := make([]uint32, cb.d1)
		for j := 0; j < cb.d1; j++ {
			e[j] = cb.hash1.HashBytes(j, f[:]) & uint32(cb.m1-1)
		}
		edges1[i] = e
	}
	est := analysis.CBDecode(full, edges1, iters)

	out := make(map[packet.CanonicalKey]uint64, len(flows))
	for i, f := range flows {
		out[f] = est[i]
	}
	return out
}

// MemoryBytes returns the bit-packed stateful memory footprint.
func (cb *CounterBraids) MemoryBytes() int {
	return (cb.m1*int(cb.bits1)+7)/8 + cb.m2*4
}

// Reset zeroes both layers.
func (cb *CounterBraids) Reset() {
	clear(cb.layer1)
	clear(cb.layer2)
}
