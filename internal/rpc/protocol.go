// Package rpc implements FlyMon's southbound control channel: a
// line-delimited JSON request/response protocol over TCP, standing in for
// P4Runtime between the controller CLI (flymonctl) and the switch daemon
// (flymond). The server wraps a controlplane.Controller; every mutation is
// a runtime-rule installation on the simulated data plane.
package rpc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"flymon/internal/tracing"
)

// Request is one control-channel call. Trace, when present, carries the
// caller's span context so the daemon can parent its dispatch span under
// the controller's operation (distributed tracing). The field is
// optional and ignored-if-unknown on both ends, so old and new peers
// interoperate: an old daemon simply drops the context and the trace
// shows the client-side span only.
type Request struct {
	ID     uint64               `json:"id"`
	Method string               `json:"method"`
	Params json.RawMessage      `json:"params,omitempty"`
	Trace  *tracing.SpanContext `json:"trace,omitempty"`
}

// Response answers a Request with the same ID. When Frame is non-zero,
// exactly that many raw payload bytes follow the response line on the
// stream (the binary frame side-channel): bulk register data rides after
// the envelope instead of inside it, so the JSON machinery never scans
// it. A profile of 256-switch fleet queries showed the base64-in-JSON
// encoding spending ~5 validation/compaction/unquote passes over each
// payload; the frame reduces that to one write and one read.
type Response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Frame  int             `json:"frame,omitempty"`
}

// maxLine bounds a single protocol line (a register readout of a large
// partition is the biggest payload).
const maxLine = 64 << 20

// codec frames newline-delimited JSON messages over a stream.
type codec struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newCodec(rw io.ReadWriter) *codec {
	return &codec{
		r: bufio.NewReaderSize(rw, 1<<16),
		w: bufio.NewWriterSize(rw, 1<<16),
	}
}

func (c *codec) write(v any) error { return c.writeFramed(v, nil) }

// writeFramed sends one message line followed by an optional raw binary
// frame, in a single flush. The caller must have set the message's Frame
// field to len(frame) so the peer knows how many bytes to consume.
func (c *codec) writeFramed(v any, frame []byte) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: encoding message: %w", err)
	}
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	if len(frame) > 0 {
		if _, err := c.w.Write(frame); err != nil {
			return err
		}
	}
	return c.w.Flush()
}

func (c *codec) read(v any) error {
	line, err := readLongLine(c.r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("rpc: decoding message: %w", err)
	}
	return nil
}

// readFrame consumes exactly n raw bytes following a response line. The
// bytes MUST be consumed (or the connection torn down) whenever a
// response announces a frame, or every later message on the stream is
// garbage.
func (c *codec) readFrame(n int) ([]byte, error) {
	if n <= 0 || n > maxLine {
		return nil, fmt.Errorf("rpc: frame of %d bytes out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, fmt.Errorf("rpc: reading %d-byte frame: %w", n, err)
	}
	return buf, nil
}

// discardFrame consumes and drops n frame bytes (stale-response draining).
func (c *codec) discardFrame(n int) error {
	if n <= 0 || n > maxLine {
		return fmt.Errorf("rpc: frame of %d bytes out of range", n)
	}
	if _, err := c.r.Discard(n); err != nil {
		return fmt.Errorf("rpc: discarding %d-byte frame: %w", n, err)
	}
	return nil
}

func readLongLine(r *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		chunk, isPrefix, err := r.ReadLine()
		if err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
		if len(buf) > maxLine {
			return nil, fmt.Errorf("rpc: message exceeds %d bytes", maxLine)
		}
		if !isPrefix {
			return buf, nil
		}
	}
}
