package sketch

import (
	"flymon/internal/packet"
)

// ExactFrequency is the ground-truth per-flow accumulator for the Frequency
// attribute: it sums a parameter (packet count or bytes) per flow key.
type ExactFrequency struct {
	spec   packet.KeySpec
	counts map[packet.CanonicalKey]uint64
}

// NewExactFrequency creates a ground-truth frequency accumulator over spec.
func NewExactFrequency(spec packet.KeySpec) *ExactFrequency {
	return &ExactFrequency{spec: spec, counts: make(map[packet.CanonicalKey]uint64)}
}

// AddPacket increments the packet count of p's flow.
func (e *ExactFrequency) AddPacket(p *packet.Packet) { e.Add(p, 1) }

// AddBytes adds p's wire size to p's flow.
func (e *ExactFrequency) AddBytes(p *packet.Packet) { e.Add(p, uint64(p.Size)) }

// Add adds v to p's flow counter.
func (e *ExactFrequency) Add(p *packet.Packet, v uint64) {
	e.counts[e.spec.Extract(p)] += v
}

// Counts exposes the per-flow ground truth.
func (e *ExactFrequency) Counts() map[packet.CanonicalKey]uint64 { return e.counts }

// Flows returns the number of distinct flows observed.
func (e *ExactFrequency) Flows() int { return len(e.counts) }

// HeavyHitters returns the flows with count ≥ threshold.
func (e *ExactFrequency) HeavyHitters(threshold uint64) map[packet.CanonicalKey]bool {
	hh := make(map[packet.CanonicalKey]bool)
	for k, c := range e.counts {
		if c >= threshold {
			hh[k] = true
		}
	}
	return hh
}

// SizeDistribution returns dist[s] = number of flows with exactly s packets.
func (e *ExactFrequency) SizeDistribution() map[uint64]float64 {
	dist := make(map[uint64]float64)
	for _, c := range e.counts {
		dist[c]++
	}
	return dist
}

// ExactDistinct is the ground-truth accumulator for the Distinct attribute:
// for each key it counts distinct parameter values (e.g. distinct SrcIPs per
// DstIP for DDoS-victim detection).
type ExactDistinct struct {
	keySpec   packet.KeySpec
	paramSpec packet.KeySpec
	sets      map[packet.CanonicalKey]map[packet.CanonicalKey]bool
}

// NewExactDistinct creates a ground-truth distinct accumulator: distinct
// paramSpec values per keySpec value.
func NewExactDistinct(keySpec, paramSpec packet.KeySpec) *ExactDistinct {
	return &ExactDistinct{
		keySpec:   keySpec,
		paramSpec: paramSpec,
		sets:      make(map[packet.CanonicalKey]map[packet.CanonicalKey]bool),
	}
}

// AddPacket records p's parameter under p's key.
func (e *ExactDistinct) AddPacket(p *packet.Packet) {
	k := e.keySpec.Extract(p)
	s := e.sets[k]
	if s == nil {
		s = make(map[packet.CanonicalKey]bool)
		e.sets[k] = s
	}
	s[e.paramSpec.Extract(p)] = true
}

// Count returns the distinct count for key k.
func (e *ExactDistinct) Count(k packet.CanonicalKey) int { return len(e.sets[k]) }

// Counts returns the distinct count per key.
func (e *ExactDistinct) Counts() map[packet.CanonicalKey]uint64 {
	out := make(map[packet.CanonicalKey]uint64, len(e.sets))
	for k, s := range e.sets {
		out[k] = uint64(len(s))
	}
	return out
}

// Over returns the keys whose distinct count ≥ threshold (DDoS victims,
// super-spreaders, port scanners).
func (e *ExactDistinct) Over(threshold int) map[packet.CanonicalKey]bool {
	out := make(map[packet.CanonicalKey]bool)
	for k, s := range e.sets {
		if len(s) >= threshold {
			out[k] = true
		}
	}
	return out
}

// ExactCardinality is the ground truth for single-key distinct counting
// (flow cardinality): the number of distinct flow keys in the traffic.
type ExactCardinality struct {
	spec packet.KeySpec
	seen map[packet.CanonicalKey]bool
}

// NewExactCardinality creates a cardinality accumulator over spec.
func NewExactCardinality(spec packet.KeySpec) *ExactCardinality {
	return &ExactCardinality{spec: spec, seen: make(map[packet.CanonicalKey]bool)}
}

// AddPacket records p's flow key.
func (e *ExactCardinality) AddPacket(p *packet.Packet) { e.seen[e.spec.Extract(p)] = true }

// Cardinality returns the number of distinct keys observed.
func (e *ExactCardinality) Cardinality() int { return len(e.seen) }

// ExactMax is the ground truth for the Max attribute: the maximum parameter
// value per flow key (e.g. max queue length per flow).
type ExactMax struct {
	spec packet.KeySpec
	max  map[packet.CanonicalKey]uint32
}

// NewExactMax creates a max accumulator over spec.
func NewExactMax(spec packet.KeySpec) *ExactMax {
	return &ExactMax{spec: spec, max: make(map[packet.CanonicalKey]uint32)}
}

// Add records parameter v for p's flow.
func (e *ExactMax) Add(p *packet.Packet, v uint32) {
	k := e.spec.Extract(p)
	if v > e.max[k] {
		e.max[k] = v
	}
}

// Values returns max parameter per key as uint64 for metric helpers.
func (e *ExactMax) Values() map[packet.CanonicalKey]uint64 {
	out := make(map[packet.CanonicalKey]uint64, len(e.max))
	for k, v := range e.max {
		out[k] = uint64(v)
	}
	return out
}

// ExactMaxInterval is the ground truth for the maximum packet inter-arrival
// time per flow.
type ExactMaxInterval struct {
	spec packet.KeySpec
	last map[packet.CanonicalKey]uint64
	max  map[packet.CanonicalKey]uint64
}

// NewExactMaxInterval creates a max-interval accumulator over spec.
func NewExactMaxInterval(spec packet.KeySpec) *ExactMaxInterval {
	return &ExactMaxInterval{
		spec: spec,
		last: make(map[packet.CanonicalKey]uint64),
		max:  make(map[packet.CanonicalKey]uint64),
	}
}

// AddPacket records p's arrival and updates its flow's maximum interval.
func (e *ExactMaxInterval) AddPacket(p *packet.Packet) {
	k := e.spec.Extract(p)
	if prev, ok := e.last[k]; ok {
		iv := p.TimestampNs - prev
		if iv > e.max[k] {
			e.max[k] = iv
		}
	} else {
		e.max[k] = 0 // first packet: interval defined as 0
	}
	e.last[k] = p.TimestampNs
}

// Values returns the max inter-arrival per flow (flows with a single packet
// report 0).
func (e *ExactMaxInterval) Values() map[packet.CanonicalKey]uint64 {
	out := make(map[packet.CanonicalKey]uint64, len(e.max))
	for k, v := range e.max {
		out[k] = v
	}
	return out
}

// ExactMembership is the ground truth for the Existence attribute: a plain
// set of flow keys.
type ExactMembership struct {
	spec packet.KeySpec
	set  map[packet.CanonicalKey]bool
}

// NewExactMembership creates a membership set over spec.
func NewExactMembership(spec packet.KeySpec) *ExactMembership {
	return &ExactMembership{spec: spec, set: make(map[packet.CanonicalKey]bool)}
}

// Insert adds p's key to the set.
func (e *ExactMembership) Insert(p *packet.Packet) { e.set[e.spec.Extract(p)] = true }

// Contains reports whether p's key is in the set.
func (e *ExactMembership) Contains(p *packet.Packet) bool { return e.set[e.spec.Extract(p)] }

// Size returns the set cardinality.
func (e *ExactMembership) Size() int { return len(e.set) }
