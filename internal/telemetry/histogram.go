package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistogramBuckets is the fixed bucket count of a Histogram: log2-of-
// nanoseconds buckets, so bucket i holds observations in [2^(i-1), 2^i) ns
// (bucket 0 holds <= 1 ns) and bucket 31 absorbs everything >= 2^30 ns
// (~1.07 s). That span covers every latency this repo measures — a register
// drain is microseconds, a full republish milliseconds — in 32 words with no
// allocation and no configuration.
const HistogramBuckets = 32

// Histogram is a fixed-size, alloc-free latency histogram with power-of-two
// nanosecond buckets. Observe is a pair of atomic adds; Snapshot folds the
// buckets for exposition. The zero value is ready to use.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// bucketIndex maps a duration to its log2 bucket.
func bucketIndex(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(uint64(ns) - 1) // ceil(log2(ns))
	if i >= HistogramBuckets {
		return HistogramBuckets - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d.Nanoseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a plain-value copy of a Histogram, serializable over
// the control channel and renderable as Prometheus cumulative buckets
// (BucketUpperNs(i) gives bucket i's inclusive upper bound).
type HistogramSnapshot struct {
	Count   uint64                   `json:"count"`
	SumNs   uint64                   `json:"sum_ns"`
	Buckets [HistogramBuckets]uint64 `json:"buckets"`
}

// Snapshot folds the histogram into a plain value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	return s
}

// BucketUpperNs returns the inclusive upper bound, in nanoseconds, of
// histogram bucket i (2^i ns; the last bucket is unbounded and reported as
// +Inf by the Prometheus writer).
func BucketUpperNs(i int) uint64 { return uint64(1) << uint(i) }
