// Epoch rotation: the §6 freeze-and-divert strategy as a measurement
// workflow. A rotator double-buffers a frequency task so every epoch's
// counters stay readable while the next epoch counts, and the control
// plane diffs consecutive epochs for heavy changers (Table 1).
package main

import (
	"fmt"
	"log"
	"sort"

	"flymon/internal/analysis"
	"flymon/internal/controlplane"
	"flymon/internal/epoch"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func main() {
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 2, Buckets: 65536, BitWidth: 32,
	})
	rot, err := epoch.NewRotator(ctrl, controlplane.TaskSpec{
		Name: "per-flow-size", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rot.Close()

	// Four epochs; epoch 2 carries a surge of fresh flows (heavy changers).
	var prev map[packet.CanonicalKey]uint64
	for e := 0; e < 4; e++ {
		cfg := trace.Config{Flows: 2000, Packets: 80_000, Seed: 7} // same flows
		if e == 2 {
			cfg.Seed = 77 // a different flow population surges in
		}
		tr := trace.Generate(cfg)
		exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
		for i := range tr.Packets {
			ctrl.Process(&tr.Packets[i])
			exact.AddPacket(&tr.Packets[i])
		}
		frozenID, err := rot.Rotate()
		if err != nil {
			log.Fatal(err)
		}

		// Read the just-frozen epoch from its registers.
		cur := make(map[packet.CanonicalKey]uint64, exact.Flows())
		for k := range exact.Counts() {
			v, err := ctrl.EstimateKey(frozenID, k)
			if err != nil {
				log.Fatal(err)
			}
			cur[k] = uint64(v)
		}
		if prev != nil {
			changers := analysis.HeavyChangers(prev, cur, 500)
			fmt.Printf("epoch %d: %5d flows, %4d heavy changers (Δ ≥ 500 pkts) vs epoch %d\n",
				e, len(cur), len(changers), e-1)
			if len(changers) > 0 {
				// Show the largest few deltas.
				type ch struct {
					k packet.CanonicalKey
					d uint64
				}
				var top []ch
				for k := range changers {
					a, b := prev[k], cur[k]
					if a > b {
						a, b = b, a
					}
					top = append(top, ch{k, b - a})
				}
				sort.Slice(top, func(i, j int) bool { return top[i].d > top[j].d })
				for i := 0; i < 3 && i < len(top); i++ {
					fmt.Printf("   changer Δ=%d packets\n", top[i].d)
				}
			}
		} else {
			fmt.Printf("epoch %d: %5d flows (baseline)\n", e, len(cur))
		}
		prev = cur
	}
}
