package tracing

import (
	"strings"
	"testing"
)

// mkSpan builds a raw span for assembly tests; times are absolute unix ns.
func mkSpan(trace TraceID, id, parent SpanID, name string, start, dur int64, sw int) Span {
	return Span{Trace: trace, ID: id, Parent: parent, Name: name, StartNs: start, DurNs: dur, Switch: sw}
}

// slowSwitchTrace models an epoch rotation where sw-17's RPC dominates:
//
//	rotate [0,40ms]
//	├── sw-0  [0,4ms]  └── rpc [0,4ms]
//	├── sw-17 [0,38ms] └── rpc [1,32ms] └── dispatch [2,1ms]
//	└── straggler_wait [33,6ms]
func slowSwitchTrace() []Span {
	ms := int64(1e6)
	return []Span{
		mkSpan(9, 1, 0, "epoch_rotate", 0, 40*ms, -1),
		mkSpan(9, 2, 1, "sw", 0, 4*ms, 0),
		mkSpan(9, 3, 2, "rpc:epoch_rotate", 0, 4*ms, -1),
		mkSpan(9, 4, 1, "sw", 0, 38*ms, 17),
		mkSpan(9, 5, 4, "rpc:epoch_rotate", 1*ms, 32*ms, -1),
		mkSpan(9, 6, 5, "dispatch:epoch_rotate", 2*ms, 1*ms, -1),
		mkSpan(9, 7, 1, "straggler_wait", 33*ms, 6*ms, 17),
	}
}

func TestAssembleLinksParents(t *testing.T) {
	trees := Assemble(slowSwitchTrace())
	if len(trees) != 1 {
		t.Fatalf("got %d trees", len(trees))
	}
	tr := trees[0]
	if tr.Root == nil || tr.Root.Span.Name != "epoch_rotate" {
		t.Fatalf("bad root: %+v", tr.Root)
	}
	if len(tr.Orphans) != 0 {
		t.Fatalf("unexpected orphans: %d", len(tr.Orphans))
	}
	if tr.Spans != 7 {
		t.Fatalf("span count = %d", tr.Spans)
	}
	if len(tr.Root.Children) != 3 {
		t.Fatalf("root children = %d", len(tr.Root.Children))
	}
	// Children sorted by start: sw-0/sw-17 (t=0) then straggler_wait (t=33ms).
	if last := tr.Root.Children[2]; last.Span.Name != "straggler_wait" {
		t.Fatalf("children unsorted: last = %s", last.Span.Name)
	}
}

func TestCriticalPathFindsSlowSwitch(t *testing.T) {
	tr := Assemble(slowSwitchTrace())[0]
	path := tr.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// The path must descend through the latest-finishing chain: the
	// straggler wait ends at 39ms, after sw-17's subtree (38ms).
	if got := path[1].Node.Span.Name; got != "straggler_wait" {
		t.Fatalf("critical path step 1 = %s, want straggler_wait", got)
	}
	dom, ok := tr.Dominant()
	if !ok {
		t.Fatal("no dominant step")
	}
	// Root self = 40-6 = 34ms dominates here; the breakdown still names
	// the rotation. Now check switch attribution via a deeper dominant:
	// drop the root's slack by shrinking it to its children's extent.
	if dom.Node != tr.Root {
		t.Fatalf("dominant = %s", dom.Node.Span.Name)
	}
	if sw := tr.pathSwitch(path[1].Node); sw != 17 {
		t.Fatalf("pathSwitch = %d, want 17", sw)
	}
}

func TestBreakdownNamesSwitch(t *testing.T) {
	ms := int64(1e6)
	spans := []Span{
		mkSpan(5, 1, 0, "epoch_rotate", 0, 40*ms, -1),
		mkSpan(5, 2, 1, "sw", 0, 39*ms, 17),
		mkSpan(5, 3, 2, "rpc:epoch_rotate", 1*ms, 31*ms, -1),
		mkSpan(5, 4, 1, "sw", 0, 3*ms, 0),
	}
	tr := Assemble(spans)[0]
	b := tr.Breakdown()
	if !strings.Contains(b, "epoch_rotate 40.0ms") {
		t.Fatalf("breakdown missing root timing: %s", b)
	}
	if !strings.Contains(b, "on sw-17") {
		t.Fatalf("breakdown does not attribute the slow switch: %s", b)
	}
}

func TestAssembleOrphans(t *testing.T) {
	spans := []Span{
		mkSpan(7, 2, 99, "rpc:add_task", 10, 5, -1), // parent never collected
	}
	tr := Assemble(spans)[0]
	if tr.Root != nil {
		t.Fatalf("rootless trace grew a root")
	}
	if len(tr.Orphans) != 1 {
		t.Fatalf("orphans = %d", len(tr.Orphans))
	}
	if got := tr.CriticalPath(); got != nil {
		t.Fatalf("rootless critical path = %v", got)
	}
	var b strings.Builder
	tr.Render(&b)
	if !strings.Contains(b.String(), "orphan") {
		t.Fatalf("render hides orphans:\n%s", b.String())
	}
}

func TestAssembleMultipleTracesNewestFirst(t *testing.T) {
	spans := []Span{
		mkSpan(1, 1, 0, "old", 100, 10, -1),
		mkSpan(2, 2, 0, "new", 200, 10, -1),
	}
	trees := Assemble(spans)
	if len(trees) != 2 {
		t.Fatalf("trees = %d", len(trees))
	}
	if trees[0].Root.Span.Name != "new" || trees[1].Root.Span.Name != "old" {
		t.Fatalf("order: %s, %s", trees[0].Root.Span.Name, trees[1].Root.Span.Name)
	}
}

func TestRenderTree(t *testing.T) {
	tr := Assemble(slowSwitchTrace())[0]
	var b strings.Builder
	tr.Render(&b)
	out := b.String()
	for _, want := range []string{"epoch_rotate", "sw-17", "straggler_wait", "dispatch:epoch_rotate", "40.0ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Child indented deeper than root.
	rootLine, childLine := -1, -1
	for i, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "epoch_rotate ") && rootLine < 0 && !strings.Contains(line, "trace") {
			rootLine = i
		}
		if strings.Contains(line, "dispatch:epoch_rotate") {
			childLine = i
		}
	}
	if rootLine < 0 || childLine < 0 || childLine <= rootLine {
		t.Fatalf("tree structure lost:\n%s", out)
	}
}
